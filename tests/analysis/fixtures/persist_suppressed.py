"""Persist violations carrying reviewed inline suppressions."""


class SuppressedController:
    def __init__(self, memctrl):
        self.memctrl = memctrl
        self.committed_meta = None
        self.btt = None

    def flush_and_commit(self, addr, data, epoch):
        self._issue_write(DeviceKind.NVM, addr, Origin.CPU, data, None)
        self.committed_meta = self._snapshot(epoch)   # lint: ok[persist-unfenced-commit]

    def poke_committed(self, block, region):
        self.committed_meta.block_regions[block] = region   # lint: ok[persist-committed-mutation]

    def persist_with_callback(self):
        self._table_persist_jobs(self.btt, 0, 4, callback=self._grow)   # lint: ok[persist-reentrant-callback]

    def _grow(self):
        self.btt.insert(7)   # lint: ok[proto-table-mutation]
