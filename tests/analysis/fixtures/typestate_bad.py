"""Bulk-run typestate violations: every rule in the family fires.

Analyzed as data, never imported — the shapes mirror the real
queue/controller code (`sim/queueing.py`, `mem/controller.py`) without
needing imports.
"""

USE_BULK_RUNS = True


class BadQueue:
    # -- typestate-cursor-monotonic: decrement + constant reset ----------

    def unservice_block(self, request):
        if request.total == 1:
            return
        request.serviced -= 1            # cursor moves backwards

    def restart_run(self, request):
        request.issued = 0               # reset outside a reset context
        request.total += 1

    # -- typestate-cursor-order: cross-rank aliasing (the seeded bug) ----

    def service_head_block(self, request):
        if request.total == 1:
            return
        request.serviced = request.completed

    # -- typestate-grow-tail-only: refusal discarded ---------------------

    def admit_next(self, queue, request):
        queue.grow_bulk(request)         # False means the block is lost

    def first_admission(self, queue, request):
        queue.try_enqueue_bulk(request)  # admitted count discarded


class BadIssuer:
    # -- typestate-parallel-arrays ---------------------------------------

    def store_payload(self, request, data):
        request.block_data.append(data)  # grows the preallocated array

    def stamp_admission(self, request, index, now):
        request.admit_times[index] = now  # slot-store in the grown array

    def swap_arrays(self, request, total):
        request.admit_times = [0] * total  # wholesale rebind mid-run


class BadController:
    # -- typestate-crashed-use -------------------------------------------

    def __init__(self, memctrl):
        self.memctrl = memctrl
        self._crashed = False

    def write_block(self, addr, origin, data):
        self._issue_write(DeviceKind.NVM, addr, origin, data, None)

    def crash(self):
        self._crashed = True

    # -- typestate-mode-divergence: not in the pin list ------------------

    def _new_path(self, page):
        if USE_BULK_RUNS:
            self._batched(page)
        else:
            self._per_block(page)
