"""Seeded-bad fixture: the protocol graph rules must fire here.

ProtocolState has an unreachable member (LOST), a dead state (TRAP) and
a malformed table key; the Phase machine has a validation-bypassing
direct assignment and an undeclared _set_phase destination.
"""

import enum


class ProtocolState(enum.Enum):
    HOME = "home"
    WORKING = "working"
    LOST = "lost"        # never a destination: unreachable from HOME
    TRAP = "trap"        # incoming edge, no way out: dead state


ALLOWED_TRANSITIONS = {
    ProtocolState.HOME: {ProtocolState.WORKING},
    ProtocolState.WORKING: {ProtocolState.HOME, ProtocolState.TRAP},
    ProtocolState.LOST: {ProtocolState.HOME},
    "bogus": {ProtocolState.HOME},          # non-member key
}


class Phase(enum.Enum):
    EXECUTING = "executing"
    ENDING = "ending"


INITIAL_PHASE = Phase.EXECUTING

PHASE_TRANSITIONS = {
    Phase.EXECUTING: {Phase.ENDING},
    Phase.ENDING: {Phase.EXECUTING},
}


class Pipeline:
    def __init__(self):
        self.phase = INITIAL_PHASE

    def _set_phase(self, new):
        self.phase = new

    def force(self):
        self.phase = Phase.ENDING               # bypasses validation

    def jump(self):
        self._set_phase(Phase.CHECKPOINTING)    # undeclared destination
