"""Persist-order violations: every rule in the persist family fires.

Analyzed as data, never imported — the bare DeviceKind/Origin names
mirror the real controller's call shapes without needing imports.
"""


class BadController:
    def __init__(self, engine, memctrl):
        self.engine = engine
        self.memctrl = memctrl
        self.committed_meta = None      # __init__ is exempt by design
        self.btt = None

    # -- persist-unfenced-commit: intraprocedural ------------------------

    def flush_and_commit(self, addr, data, epoch):
        self._issue_write(DeviceKind.NVM, addr, Origin.CPU, data, None)
        self.committed_meta = self._snapshot(epoch)

    # -- persist-unfenced-commit: the commit lives two calls away, the
    # unfenced table persist propagates through the entry state --------

    def checkpoint(self, epoch):
        self._persist_tables()
        self._commit(epoch)

    def _persist_tables(self):
        self._table_persist_jobs(self.btt, 0, 4)

    def _commit(self, epoch):
        self.committed_meta = self._snapshot(epoch)

    # -- persist-unfenced-commit: fencing is asynchronous; committing in
    # the same synchronous breath as the fence call is still unfenced --

    def fence_then_commit_synchronously(self, addr, data, epoch):
        self._issue_write(DeviceKind.NVM, addr, Origin.CPU, data, None)
        self.memctrl.fence_writes(DeviceKind.NVM, self._noop)
        self.committed_meta = self._snapshot(epoch)

    def _noop(self):
        pass

    # -- persist-committed-mutation --------------------------------------

    def poke_committed(self, block, region):
        self.committed_meta.block_regions[block] = region

    def grow_committed(self, page, slot):
        self.committed_meta.page_regions.update({page: slot})

    # -- persist-reentrant-callback --------------------------------------

    def persist_with_callback(self):
        self._table_persist_jobs(self.btt, 0, 4, callback=self._grow)

    def _grow(self):
        self.btt.insert(7)
