"""The typestate family: bulk-cursor monotonicity/ordering, parallel
arrays, the tail-merge contract, crashed-controller gating and mode
divergence fire on the bad fixture, stay quiet on the clean one, and
honour the mode pin list."""

from .conftest import lint_fixture, rules_fired

TYPESTATE_RULES = (
    "typestate-cursor-monotonic",
    "typestate-cursor-order",
    "typestate-parallel-arrays",
    "typestate-grow-tail-only",
    "typestate-crashed-use",
    "typestate-mode-divergence",
)


def test_bad_fixture_trips_every_typestate_rule():
    report = lint_fixture("typestate_bad.py", select=TYPESTATE_RULES)
    assert set(TYPESTATE_RULES) == rules_fired(report)


def test_cursor_monotonic_decrement_and_reset():
    report = lint_fixture("typestate_bad.py",
                          select=["typestate-cursor-monotonic"])
    messages = [f.message for f in report.findings]
    assert len(messages) == 2
    assert any("decremented" in m for m in messages)
    assert any("reset to a constant" in m for m in messages)


def test_cursor_order_names_both_cursors():
    report = lint_fixture("typestate_bad.py",
                          select=["typestate-cursor-order"])
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert ".serviced" in message and ".completed" in message
    assert "lower-rank" in message


def test_parallel_array_sites():
    report = lint_fixture("typestate_bad.py",
                          select=["typestate-parallel-arrays"])
    messages = " | ".join(f.message for f in report.findings)
    assert len(report.findings) == 3
    assert "grows" in messages                # block_data.append
    assert "slot-store" in messages           # admit_times[i] = now
    assert "reassigned wholesale" in messages


def test_grow_tail_only_flags_both_admitters():
    report = lint_fixture("typestate_bad.py",
                          select=["typestate-grow-tail-only"])
    called = {f.message.split("(")[0] for f in report.findings}
    assert called == {"grow_bulk", "try_enqueue_bulk"}


def test_crashed_use_names_the_durable_site():
    report = lint_fixture("typestate_bad.py",
                          select=["typestate-crashed-use"])
    assert len(report.findings) == 1
    assert "BadController.write_block" in report.findings[0].message


def test_mode_divergence_respects_pin_list():
    report = lint_fixture("typestate_bad.py",
                          select=["typestate-mode-divergence"])
    assert len(report.findings) == 1
    assert "BadController._new_path" in report.findings[0].message
    pinned = lint_fixture("typestate_bad.py",
                          select=["typestate-mode-divergence"],
                          mode_pinned=("BadController._new_path",))
    assert pinned.findings == []


def test_good_fixture_is_clean():
    report = lint_fixture("typestate_good.py", select=TYPESTATE_RULES,
                          mode_pinned=("GoodController._pinned_path",))
    assert report.findings == []


def test_good_fixture_divergence_without_pin_warns():
    report = lint_fixture("typestate_good.py",
                          select=["typestate-mode-divergence"],
                          mode_pinned=())
    assert len(report.findings) == 1


def test_out_of_scope_module_is_ignored():
    report = lint_fixture("typestate_bad.py", select=TYPESTATE_RULES,
                          typestate_scope=("repro/sim/",))
    assert report.findings == []


def test_queued_gauge_is_exempt():
    # typestate_good.py's service_head_block assigns request.queued from
    # a local; no cursor rule may treat the gauge as a cursor.
    report = lint_fixture("typestate_good.py",
                          select=["typestate-cursor-monotonic",
                                  "typestate-cursor-order"])
    assert report.findings == []


def test_every_typestate_rule_has_explain_material():
    from repro.analysis.registry import get_rule
    for rule_id in TYPESTATE_RULES:
        rule = get_rule(rule_id)
        assert rule.family == "typestate"
        assert rule.description and rule.rationale
        assert rule.example_bad and rule.example_good
