"""One seeded bulk-cursor bug, caught three ways.

The seed collapses the queue's service frontier — ``request.serviced
+= 1`` becomes ``request.serviced = request.completed`` in
``BoundedQueue._service_head_block`` — which silently breaks the fence
accounting invariant ``covered = queued + (serviced - completed)``.
The same mutation must be caught by

* the static typestate rule (``typestate-cursor-order``),
* the model checker (``repro verify``: the bulk in-order fact stops
  extracting, and the shadow machine's straggler world produces
  counterexamples), and
* the runtime (the memory controller's completion-path cursor guard
  trips under any bulk-run workload the fuzzer drives).
"""

import importlib.util
import shutil
from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_analysis
from repro.analysis.verify import (PROTOCOL_FILES, build_exploration,
                                   extract_facts)
from repro.analysis.verify.extract import default_root
from repro.errors import SimulationError

CLEAN = "request.serviced += 1"
BUGGY = "request.serviced = request.completed"


def mutate(source: str) -> str:
    assert CLEAN in source, "seed anchor moved; update this test"
    return source.replace(CLEAN, BUGGY)


def seeded_queueing(tmp_path: Path) -> Path:
    """A standalone copy of sim/queueing.py carrying the bug."""
    source = mutate((default_root() / "sim" / "queueing.py").read_text())
    # Absolute imports so the copy loads outside the package.
    source = source.replace("from ..errors import", "from repro.errors import")
    source = source.replace("from .request import",
                            "from repro.sim.request import")
    target = tmp_path / "queueing.py"
    target.write_text(source)
    return target


def seeded_root(tmp_path: Path) -> Path:
    """Protocol sources with the cursor bug planted in the queue."""
    root = tmp_path / "src"
    for rel in PROTOCOL_FILES:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(default_root() / rel, target)
    queueing = root / "sim" / "queueing.py"
    queueing.write_text(mutate(queueing.read_text()))
    return root


def test_typestate_rule_catches_the_seed(tmp_path):
    target = seeded_queueing(tmp_path)
    config = LintConfig(typestate_scope=("",),
                        select=("typestate-cursor-order",))
    report = run_analysis([target], config)
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert ".serviced" in message and ".completed" in message


def test_verifier_catches_the_seed(tmp_path):
    facts = extract_facts(seeded_root(tmp_path))
    assert not facts.bulk_inorder
    assert any("straggler" in w.message for w in facts.warnings)
    exploration = build_exploration("shadow", facts)
    straggler = [ce for ce in exploration.counterexamples
                 if "straggler" in ce.assumption]
    assert straggler, "straggler world produced no counterexamples"
    # The straggler block's own torn-crash finding points into the
    # queue source, at the bad assignment (crashes upstream of it
    # anchor at the flush stage that issued the run).
    assert any(ce.anchor[0] == "sim/queueing.py" for ce in straggler)


def test_runtime_guard_catches_the_seed(tmp_path, monkeypatch):
    from repro.fuzz.runner import census
    from repro.sim.queueing import BoundedQueue

    target = seeded_queueing(tmp_path)
    spec = importlib.util.spec_from_file_location("seeded_queueing", target)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(BoundedQueue, "_service_head_block",
                        module.BoundedQueue._service_head_block)
    with pytest.raises(SimulationError, match="service order violated"):
        census("shadow", "sparse", seed=1, epochs=2, blocks=8)
