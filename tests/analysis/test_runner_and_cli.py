"""End-to-end checks: the shipped tree lints clean and the `repro lint`
CLI plumbing (exit codes, JSON, --strict, --list-rules) works."""

import json
from pathlib import Path

import repro
from repro.analysis import all_rules, run_analysis
from repro.cli import main

SRC = Path(repro.__file__).parent


def test_shipped_tree_is_lint_clean():
    report = run_analysis([SRC])
    assert report.findings == []
    assert report.files_scanned > 50


def test_rule_catalogue():
    rules = all_rules()
    assert {rule.family for rule in rules} == {"determinism", "protocol",
                                               "api", "persist", "race"}
    assert len(rules) >= 15
    ids = [rule.id for rule in rules]
    assert ids == sorted(ids)          # deterministic output ordering


def test_cli_clean_run_exits_zero(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_json_output(capsys):
    assert main(["lint", str(SRC), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert payload["findings"] == []


def test_cli_reports_errors_and_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "clockwork.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    assert main(["lint", str(tmp_path)]) == 1
    assert "det-wallclock" in capsys.readouterr().out


def test_cli_strict_promotes_warnings(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text('__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\n'
                   'def g():\n    pass\n')
    assert main(["lint", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["lint", str(tmp_path), "--strict"]) == 1


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    report = run_analysis([bad])
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert report.exit_code() == 1
