"""End-to-end checks: the shipped tree lints clean and the `repro lint`
CLI plumbing (exit codes, JSON, --strict, --list-rules) works."""

import json
import subprocess
from pathlib import Path

import repro
from repro.analysis import all_rules, changed_files, run_analysis
from repro.cli import main

SRC = Path(repro.__file__).parent

BAD_CLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"


def test_shipped_tree_is_lint_clean():
    report = run_analysis([SRC])
    assert report.findings == []
    assert report.files_scanned > 50


def test_rule_catalogue():
    rules = all_rules()
    assert {rule.family for rule in rules} == {"determinism", "protocol",
                                               "api", "persist", "race",
                                               "typestate"}
    assert len(rules) >= 20
    assert sum(1 for rule in rules if rule.family == "typestate") >= 5
    ids = [rule.id for rule in rules]
    assert ids == sorted(ids)          # deterministic output ordering


def test_cli_clean_run_exits_zero(capsys):
    assert main(["lint", str(SRC)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_cli_json_output(capsys):
    assert main(["lint", str(SRC), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 0
    assert payload["findings"] == []


def test_cli_reports_errors_and_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "clockwork.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    assert main(["lint", str(tmp_path)]) == 1
    assert "det-wallclock" in capsys.readouterr().out


def test_cli_strict_promotes_warnings(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text('__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\n'
                   'def g():\n    pass\n')
    assert main(["lint", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["lint", str(tmp_path), "--strict"]) == 1


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out


def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    report = run_analysis([bad])
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert report.exit_code() == 1


def _git(repo, *args):
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    *args], cwd=repo, check=True, capture_output=True)


def _git_repo(tmp_path):
    """A repo with one committed bad file and one uncommitted one."""
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "committed_bad.py").write_text(BAD_CLOCK)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    (core / "fresh_bad.py").write_text(BAD_CLOCK)
    return tmp_path


def test_restrict_to_limits_reporting_not_parsing(tmp_path):
    repo = _git_repo(tmp_path)
    fresh = repo / "repro" / "core" / "fresh_bad.py"
    full = run_analysis([repo])
    assert {Path(f.path).name for f in full.findings} == {
        "committed_bad.py", "fresh_bad.py"}
    restricted = run_analysis([repo], restrict_to=[fresh])
    assert {Path(f.path).name for f in restricted.findings} == {
        "fresh_bad.py"}
    assert restricted.files_scanned == full.files_scanned


def test_changed_files_sees_only_uncommitted_work(tmp_path, monkeypatch):
    repo = _git_repo(tmp_path)
    monkeypatch.chdir(repo)
    changed = changed_files([repo])
    assert changed is not None
    assert [path.name for path in changed] == ["fresh_bad.py"]


def test_cli_changed_only(tmp_path, monkeypatch, capsys):
    repo = _git_repo(tmp_path)
    monkeypatch.chdir(repo)
    assert main(["lint", str(repo), "--changed-only", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "fresh_bad.py" in out
    assert "committed_bad.py" not in out


def test_cli_changed_only_outside_git_tree(tmp_path, monkeypatch,
                                           capsys):
    (tmp_path / "mod.py").write_text("def f():\n    return 1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["lint", str(tmp_path), "--changed-only",
                 "--no-cache"]) == 2
    assert "requires a git work tree" in capsys.readouterr().err
