"""The checkpoint-invariant rules flag the seeded-bad fixtures and pass
the clean miniature protocol."""

from .conftest import lint_fixture, rules_fired


def test_bad_graph_fixture_flags_everything():
    report = lint_fixture("proto_bad.py")
    messages = [f.message for f in report.findings]
    assert any("unreachable" in m and "LOST" in m for m in messages)
    assert any("dead state" in m and "TRAP" in m for m in messages)
    assert any("not a plain ProtocolState" in m for m in messages)
    assert any("bypasses" in m for m in messages)
    assert any("not a declared destination" in m and "CHECKPOINTING" in m
               for m in messages)
    assert rules_fired(report) == {"proto-state-graph", "proto-phase-graph"}


def test_good_graph_fixture_is_clean():
    report = lint_fixture("proto_good.py")
    assert report.findings == []


def test_metadata_mutation_outside_core_is_flagged():
    report = lint_fixture("proto_mutation.py")
    assert rules_fired(report) == {"proto-entry-mutation",
                                   "proto-table-mutation"}
    outside = [f for f in report.findings
               if "outside repro/core" in f.message]
    # assignment, set mutator, btt.insert, and even the method mutation:
    # outside core nothing may touch entry state.
    assert len(outside) == 4


def test_in_core_mutation_must_be_inside_a_method():
    report = lint_fixture("proto_mutation.py", core_prefixes=("fixtures/",),
                          select=["proto-entry-mutation"])
    # The two free-function mutations are flagged; the method one is not.
    assert len(report.findings) == 2
    assert all("outside a protocol method" in f.message
               for f in report.findings)
