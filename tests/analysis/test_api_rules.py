"""The API-hygiene rules flag the seeded-bad fixture and pass the
clean one."""

from repro.analysis import Severity

from .conftest import lint_fixture, rules_fired


def test_bad_fixture_trips_both_api_rules():
    report = lint_fixture("api_bad.py")
    assert rules_fired(report) == {"api-port-surface", "api-all-exports"}


def test_port_surface_findings():
    report = lint_fixture("api_bad.py", select=["api-port-surface"])
    messages = [f.message for f in report.findings]
    assert any("missing write_block" in m for m in messages)
    assert any("does not start with the MemoryPort parameters" in m
               for m in messages)


def test_all_exports_findings():
    report = lint_fixture("api_bad.py", select=["api-all-exports"])
    messages = [f.message for f in report.findings]
    assert any("twice" in m for m in messages)
    assert any("never binds" in m for m in messages)
    unlisted = [f for f in report.findings
                if "not listed in __all__" in f.message]
    assert unlisted
    assert all(f.severity is Severity.WARNING for f in unlisted)
    hard = [f for f in report.findings
            if "not listed in __all__" not in f.message]
    assert all(f.severity is Severity.ERROR for f in hard)


def test_good_fixture_is_clean():
    report = lint_fixture("api_good.py")
    assert report.findings == []
