"""`repro lint --baseline`: grandfather a findings snapshot.

The baseline keys entries exactly like the canonical report sort
``(path, line, col, rule, message)``, matches as a multiset, drops
matched findings from the report and exit code, and keeps *new*
findings failing — so a stricter rule family can land warn-first
without path-glob suppressions.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.baseline import (apply_baseline, finding_key,
                                     load_baseline, write_baseline)
from repro.analysis.findings import Finding, Severity
from repro.cli import main

BAD_CLOCK = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _finding(path="repro/core/x.py", line=4, col=11, rule="det-wallclock",
             message="wall clock", severity=Severity.ERROR):
    return Finding(rule=rule, severity=severity, path=path, line=line,
                   col=col, message=message)


def test_roundtrip_and_multiset_matching(tmp_path):
    twice = _finding()
    other = _finding(line=9, message="other site")
    snapshot = tmp_path / "baseline.json"
    write_baseline(snapshot, [twice, twice, other])
    baseline = load_baseline(snapshot)
    assert baseline[finding_key(twice)] == 2
    # Three occurrences against two baselined: exactly one survives.
    kept, baselined, stale = apply_baseline([twice, twice, twice],
                                            baseline)
    assert kept == [twice]
    assert baselined == 2
    assert stale == 1                    # `other` matched nothing


def test_severity_change_does_not_resurface_a_finding(tmp_path):
    warned = _finding(severity=Severity.WARNING)
    snapshot = tmp_path / "baseline.json"
    write_baseline(snapshot, [warned])
    promoted = _finding(severity=Severity.ERROR)
    kept, baselined, stale = apply_baseline([promoted],
                                            load_baseline(snapshot))
    assert kept == [] and baselined == 1 and stale == 0


@pytest.mark.parametrize("payload", [
    "not json {",
    json.dumps([1, 2]),
    json.dumps({"version": 99, "findings": []}),
    json.dumps({"version": 1, "findings": [{"path": "x.py"}]}),
])
def test_malformed_baselines_are_rejected(tmp_path, payload):
    snapshot = tmp_path / "baseline.json"
    snapshot.write_text(payload)
    with pytest.raises(ValueError):
        load_baseline(snapshot)


def _bad_tree(tmp_path):
    core = tmp_path / "tree" / "repro" / "core"
    core.mkdir(parents=True)
    (core / "clockwork.py").write_text(BAD_CLOCK)
    return tmp_path / "tree"


def test_cli_baseline_suppresses_known_findings(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    snapshot = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--no-cache"]) == 1
    capsys.readouterr()

    # Record the snapshot, then the same tree lints clean against it.
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(snapshot), "--update-baseline"]) == 0
    assert "baselined" in capsys.readouterr().err
    assert load_baseline(snapshot)

    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(snapshot)]) == 0
    captured = capsys.readouterr()
    assert "0 error(s)" in captured.out
    assert "1 baselined, 0 stale" in captured.err


def test_cli_baseline_new_findings_still_fail(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    snapshot = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(snapshot), "--update-baseline"]) == 0
    (tree / "repro" / "core" / "fresh.py").write_text(BAD_CLOCK)
    capsys.readouterr()
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(snapshot)]) == 1
    captured = capsys.readouterr()
    assert "fresh.py" in captured.out
    assert "clockwork.py" not in captured.out


def test_cli_baseline_reports_stale_entries(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    snapshot = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(snapshot), "--update-baseline"]) == 0
    (tree / "repro" / "core" / "clockwork.py").write_text(
        "def stamp():\n    return 0\n")
    capsys.readouterr()
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(snapshot)]) == 0
    err = capsys.readouterr().err
    assert "0 baselined" in err
    assert "stale" in err and "refresh with --update-baseline" in err


def test_cli_baseline_usage_errors(tmp_path, capsys):
    tree = _bad_tree(tmp_path)
    missing = tmp_path / "nope.json"
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(missing)]) == 2
    assert "record one with --update-baseline" in capsys.readouterr().err
    assert main(["lint", str(tree), "--no-cache",
                 "--update-baseline"]) == 2
    assert "requires --baseline" in capsys.readouterr().err
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("not json {")
    assert main(["lint", str(tree), "--no-cache",
                 "--baseline", str(corrupt)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_baseline_keys_match_run_analysis_findings(tmp_path):
    """A written snapshot round-trips the analyzer's own findings."""
    tree = _bad_tree(tmp_path)
    report = run_analysis([tree])
    assert report.findings
    snapshot = tmp_path / "baseline.json"
    write_baseline(snapshot, report.findings)
    kept, baselined, stale = apply_baseline(report.findings,
                                            load_baseline(snapshot))
    assert kept == [] and baselined == len(report.findings) and stale == 0
    entry = json.loads(snapshot.read_text())["findings"][0]
    assert Path(entry["path"]).name == "clockwork.py"
