"""The same-cycle race rule: fires on overlapping handler footprints,
accepts disjoint/sequenced/self/unresolvable patterns, and honours
inline suppressions."""

from .conftest import lint_fixture, rules_fired


def test_bad_fixture_flags_the_racy_pair():
    report = lint_fixture("race_bad.py", select=["race-same-cycle"])
    assert rules_fired(report) == {"race-same-cycle"}
    assert len(report.findings) == 1


def test_message_names_both_handlers_and_the_shared_attr():
    report = lint_fixture("race_bad.py", select=["race-same-cycle"])
    message = report.findings[0].message
    assert "_tick" in message and "_tock" in message
    assert "counter" in message


def test_footprint_is_transitive_over_synchronous_calls():
    # _tock itself never writes counter; _reset (called synchronously)
    # does.  If the rule only looked one level deep this would pass
    # silently, so the bad fixture doubles as the transitivity probe.
    report = lint_fixture("race_bad.py", select=["race-same-cycle"])
    assert report.findings != []


def test_good_fixture_is_clean():
    report = lint_fixture("race_good.py", select=["race-same-cycle"])
    assert report.findings == []


def test_out_of_scope_module_is_ignored():
    report = lint_fixture("race_bad.py", select=["race-same-cycle"],
                          race_scope=("repro/core/",))
    assert report.findings == []


def test_inline_suppression_comments():
    report = lint_fixture("race_suppressed.py", select=["race-same-cycle"])
    assert report.findings == []
