"""The persist family: unfenced commits, committed-region mutation and
re-entrant persist callbacks fire on the bad fixture, stay quiet on the
clean one, and honour inline suppressions."""

from .conftest import lint_fixture, rules_fired

PERSIST_RULES = ("persist-unfenced-commit", "persist-committed-mutation",
                 "persist-reentrant-callback")


def test_bad_fixture_trips_every_persist_rule():
    report = lint_fixture("persist_bad.py", select=PERSIST_RULES)
    assert set(PERSIST_RULES) == rules_fired(report)


def test_unfenced_commit_direct_and_interprocedural():
    report = lint_fixture("persist_bad.py", select=["persist-unfenced-commit"])
    lines = sorted(f.line for f in report.findings)
    # flush_and_commit (direct), _commit (entry-state propagation from
    # checkpoint -> _persist_tables), and the synchronous commit right
    # after an *asynchronous* fence call.
    assert len(lines) == 3


def test_commit_after_fence_call_is_still_unfenced():
    from .conftest import FIXTURES
    source = (FIXTURES / "persist_bad.py").read_text().splitlines()
    fence_line = next(i for i, text in enumerate(source, 1)
                      if "fence_writes" in text)
    report = lint_fixture("persist_bad.py", select=["persist-unfenced-commit"])
    # The commit on the line after the fence call still flags: draining
    # is asynchronous, so the fence has not completed yet.
    assert any(f.line == fence_line + 1 for f in report.findings)


def test_committed_mutation_sites():
    report = lint_fixture("persist_bad.py",
                          select=["persist-committed-mutation"])
    assert len(report.findings) == 2


def test_reentrant_callback_names_the_mutator():
    report = lint_fixture("persist_bad.py",
                          select=["persist-reentrant-callback"])
    assert len(report.findings) == 1
    assert "_grow" in report.findings[0].message


def test_good_fixture_is_clean():
    report = lint_fixture("persist_good.py", select=PERSIST_RULES)
    assert report.findings == []


def test_out_of_scope_module_is_ignored():
    report = lint_fixture("persist_bad.py", select=PERSIST_RULES,
                          persist_scope=("repro/core/",))
    assert report.findings == []


def test_inline_suppression_comments():
    report = lint_fixture("persist_suppressed.py", select=PERSIST_RULES)
    assert report.findings == []


def test_findings_are_errors():
    report = lint_fixture("persist_bad.py", select=PERSIST_RULES)
    assert {f.severity.value for f in report.findings} == {"error"}
