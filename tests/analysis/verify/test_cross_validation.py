"""The abstract and concrete crash surfaces stay welded together.

Direction 1: every site kind the dynamic census observes for a
system×workload is emitted by that system's abstract machine — the
model cannot under-approximate the instrumented surface.

Direction 2: every kind an abstract machine emits is a runtime
``SITE_KINDS`` member, so a compiled counterexample plan always
parses; ``coverage_gaps()`` owns this check (plus the static effect
surface) and must stay empty.
"""

import pytest

from repro.analysis.verify import (VERIFY_SYSTEMS, VERIFY_WORKLOADS,
                                   abstract_site_kinds)
from repro.core.probes import SITE_KINDS
from repro.fuzz.runner import census
from repro.fuzz.sites import coverage_gaps

#: Kinds whose runtime detail is a concrete page number the abstract
#: machine cannot (and need not) predict — compared kind-only.
_CONCRETE_DETAIL_KINDS = ("promote", "demote")


@pytest.mark.parametrize("system", VERIFY_SYSTEMS)
@pytest.mark.parametrize("workload", VERIFY_WORKLOADS)
def test_census_kinds_subset_of_abstract_emissions(system, workload):
    emissions = abstract_site_kinds(system)
    counts = census(system, workload, seed=1, epochs=3, blocks=16)
    assert counts, f"census empty for {system}/{workload}"
    for key in counts:
        kind, _, detail = key.partition(".")
        assert kind in emissions, \
            (f"{system}/{workload}: runtime fires {key!r} but the "
             f"abstract machine never emits kind {kind!r}")
        if detail and kind not in _CONCRETE_DETAIL_KINDS:
            assert detail in emissions[kind], \
                (f"{system}/{workload}: runtime fires {key!r} but the "
                 f"abstract machine only emits details "
                 f"{sorted(emissions[kind])!r}")


@pytest.mark.parametrize("system", VERIFY_SYSTEMS)
def test_abstract_kinds_subset_of_runtime_taxonomy(system):
    for kind in abstract_site_kinds(system):
        assert kind in SITE_KINDS


def test_coverage_gaps_empty_in_both_directions():
    assert coverage_gaps() == {}
