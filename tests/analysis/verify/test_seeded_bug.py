"""End-to-end counterexample pipeline on a seeded protocol bug.

The PR-2 near-miss: promoting a hot page while placing its DRAM
writeback into a *fixed* region instead of deriving it from where the
page's committed block copies live.  The model checker must find it,
compile a concrete crash plan, and the dynamic replayer must confirm
the plan fails against a runtime carrying the same bug.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.verify import (PROTOCOL_FILES, build_exploration,
                                   extract_facts, plan_string, run_verify)
from repro.analysis.verify.extract import default_root

BUGGY = "stable = REGION_B"
CLEAN = "stable = self._promotion_region(page)"


def seeded_root(tmp_path: Path) -> Path:
    """Copy the protocol sources and plant the fixed-region bug."""
    root = tmp_path / "src"
    for rel in PROTOCOL_FILES:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(default_root() / rel, target)
    controller = root / "core" / "controller.py"
    source = controller.read_text()
    assert CLEAN in source, "seed anchor moved; update this test"
    controller.write_text(source.replace(CLEAN, BUGGY))
    return root


@pytest.fixture(scope="module")
def bug_exploration(tmp_path_factory):
    root = seeded_root(tmp_path_factory.mktemp("seeded"))
    facts = extract_facts(root)
    return facts, build_exploration("thynvm", facts)


def test_extraction_sees_the_constant_policy(bug_exploration):
    facts, _ = bug_exploration
    assert facts.promotion is not None
    assert facts.promotion.kind == "constant:B"


def test_counterexample_found_and_compiled(bug_exploration):
    _, exploration = bug_exploration
    assert exploration.counterexamples != []
    ce = exploration.counterexamples[0]
    assert ce.check == "verify-committed-overwrite"
    assert ce.workload == "hotpage"
    plan = plan_string(ce)
    # The writeback stage (index 2) of the first checkpoint after the
    # promotion overwrites the committed block copies.
    assert plan == "thynvm/hotpage:s1:e2:b16@stage-done.2#2+0"


def test_run_verify_reports_replayable_finding(tmp_path):
    root = seeded_root(tmp_path)
    report = run_verify(root=root, cache_dir=None)
    assert report.exit_code() == 1
    messages = [f.message for f in report.findings
                if f.rule == "verify-committed-overwrite"]
    assert messages
    assert any("repro fuzz replay 'thynvm/hotpage:" in message
               for message in messages)
    # The anchor points into the (copied) protocol source.
    anchored = [f for f in report.findings
                if f.rule == "verify-committed-overwrite"]
    assert all(f.path.endswith("core/controller.py") for f in anchored)
    assert all(f.line > 1 for f in anchored)


def test_compiled_plan_fails_only_on_the_buggy_runtime(bug_exploration,
                                                       monkeypatch):
    from repro.core.controller import ThyNVMController
    from repro.core.regions import REGION_B
    from repro.fuzz.plan import parse_plan
    from repro.fuzz.runner import run_plan

    _, exploration = bug_exploration
    plan = parse_plan(plan_string(exploration.counterexamples[0]))

    clean = run_plan(plan)
    assert clean.outcome == "pass", clean.detail

    monkeypatch.setattr(ThyNVMController, "_promotion_region",
                        lambda self, page: REGION_B)
    buggy = run_plan(plan)
    assert buggy.outcome == "fail"
    assert "mismatch after recovery" in (buggy.detail or "")
