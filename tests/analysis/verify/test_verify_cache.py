"""Verify verdict cache: warm runs parse nothing, output stays
byte-identical, and protocol edits invalidate."""

import json
import shutil

from repro.analysis.verify import PROTOCOL_FILES, run_verify
from repro.analysis.verify.extract import default_root
from repro.cli import main


def _protocol_copy(tmp_path):
    root = tmp_path / "src"
    for rel in PROTOCOL_FILES:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(default_root() / rel, target)
    return root


def test_cold_then_warm_run(tmp_path):
    cache = tmp_path / "cache"
    cold = run_verify(cache_dir=cache)
    assert cold.systems_cached == 0
    assert cold.systems_analyzed == 5
    assert cold.files_parsed == len(PROTOCOL_FILES)
    warm = run_verify(cache_dir=cache)
    assert warm.systems_cached == 5
    assert warm.systems_analyzed == 0
    assert warm.files_parsed == 0            # zero files re-parsed
    assert warm.systems == cold.systems


def test_protocol_edit_invalidates(tmp_path):
    root = _protocol_copy(tmp_path)
    cache = tmp_path / "cache"
    run_verify(root=root, cache_dir=cache)
    target = root / "core" / "epoch.py"
    target.write_text(target.read_text() + "\n# touched\n")
    rerun = run_verify(root=root, cache_dir=cache)
    assert rerun.systems_cached == 0
    assert rerun.systems_analyzed == 5


def test_corrupt_entry_degrades_to_miss(tmp_path):
    cache = tmp_path / "cache"
    run_verify(cache_dir=cache)
    entries = list(cache.rglob("*.json"))
    assert entries
    for entry in entries:
        entry.write_text("{not json")
    rerun = run_verify(cache_dir=cache)
    assert rerun.systems_analyzed == 5
    assert rerun.findings == []


def test_cold_and_warm_output_bytes_identical(tmp_path, capsys):
    # Text output (findings + summary line) is byte-identical; the
    # json "findings" and per-system verdicts match exactly — only the
    # cache accounting counters may differ between cold and warm.
    cache = tmp_path / "cache"
    assert main(["verify", "--cache-dir", str(cache)]) == 0
    cold = capsys.readouterr()
    assert "5 analyzed" in cold.err
    assert main(["verify", "--cache-dir", str(cache)]) == 0
    warm = capsys.readouterr()
    assert "5 cached, 0 analyzed, 0 file(s) parsed" in warm.err
    assert warm.out == cold.out

    assert main(["verify", "--cache-dir", str(cache), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    fresh = run_verify(cache_dir=None)
    assert payload["findings"] == [f.to_dict() for f in fresh.findings]
    assert payload["systems"] == fresh.systems


def test_no_cache_skips_cache_entirely(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["verify", "--no-cache"]) == 0
    assert "verify cache" not in capsys.readouterr().err
    assert not (tmp_path / ".repro-cache").exists()
