"""The shipped protocol model-checks clean: exact extraction, zero
counterexamples, and explored graphs inside the static tables."""

import pytest

from repro.analysis.verify import (VERIFY_SYSTEMS, VERIFY_WORKLOADS,
                                   build_exploration, extract_facts,
                                   run_verify)
from repro.fuzz.plan import FUZZ_SYSTEMS
from repro.fuzz.workloads import WORKLOAD_NAMES


@pytest.fixture(scope="module")
def facts():
    return extract_facts()


@pytest.fixture(scope="module")
def explorations(facts):
    return {system: build_exploration(system, facts)
            for system in VERIFY_SYSTEMS}


def test_extraction_is_exact_on_shipped_tree(facts):
    # Zero warnings: every protocol fact resolves from the sources.
    # A refactor that breaks an anchor shows up here first.
    assert facts.warnings == []
    assert len(facts.files) == 7


def test_extracted_checkpoint_shape(facts):
    assert facts.thynvm_stage_roles == ["data:entry", "table:btt",
                                        "data:pe", "table:ptt"]
    assert facts.journal_stage_roles == ["log", "home"]
    assert facts.journal_capture_stage == 1
    assert facts.promotion is not None
    assert facts.promotion.kind == "committed-derived"
    assert facts.promotion.defers_mixed
    assert facts.bulk_inorder    # queue serviced-cursor discipline holds


@pytest.mark.parametrize("system", VERIFY_SYSTEMS)
def test_clean_tree_has_no_counterexamples(explorations, system):
    exploration = explorations[system]
    assert exploration.counterexamples == []
    assert exploration.crash_points > 0
    assert len(exploration.states) > 10


@pytest.mark.parametrize("system", VERIFY_SYSTEMS)
def test_explored_phase_edges_in_static_table(facts, explorations,
                                              system):
    assert facts.phase_graph is not None
    for old, new in explorations[system].phase_edges:
        assert new in facts.phase_graph.get(old, frozenset()), \
            f"{system}: {old} -> {new} absent from PHASE_TRANSITIONS"


@pytest.mark.parametrize("system", VERIFY_SYSTEMS)
def test_explored_state_edges_in_static_table(facts, explorations,
                                              system):
    assert facts.state_graph is not None
    for obj, edges in explorations[system].state_edges.items():
        for old, new in edges:
            assert new in facts.state_graph.get(old, frozenset()), \
                (f"{system}/{obj}: {old} -> {new} absent from "
                 f"ALLOWED_TRANSITIONS")


def test_run_verify_clean():
    report = run_verify(cache_dir=None)
    assert report.findings == []
    assert report.systems_scanned == len(VERIFY_SYSTEMS)
    assert report.systems_analyzed == len(VERIFY_SYSTEMS)
    assert report.exit_code(strict=True) == 0
    for system in VERIFY_SYSTEMS:
        assert report.systems[system]["counterexamples"] == []


def test_verify_surface_pins_fuzzer_surface():
    # The checker and the fuzzer must always talk about the same
    # systems and workloads, or counterexample plans stop replaying.
    assert VERIFY_SYSTEMS == FUZZ_SYSTEMS
    assert VERIFY_WORKLOADS == WORKLOAD_NAMES
