"""`repro verify` CLI plumbing: exit codes, formats, explain."""

import json

from repro.analysis.verify import VERIFY_SYSTEMS, all_checks
from repro.cli import main


def test_clean_run_exits_zero(capsys):
    assert main(["verify", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "5 system(s)" in out


def test_json_output(capsys):
    assert main(["verify", "--no-cache", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["summary"]["systems_scanned"] == len(VERIFY_SYSTEMS)
    assert set(payload["systems"]) == set(VERIFY_SYSTEMS)
    for summary in payload["systems"].values():
        assert summary["counterexamples"] == []
        assert summary["crash_points"] > 0


def test_sarif_output(capsys):
    assert main(["verify", "--no-cache", "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-verify"
    assert run["results"] == []


def test_system_selection(capsys):
    assert main(["verify", "--no-cache", "--system", "journal",
                 "--system", "shadow", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["systems"]) == {"journal", "shadow"}


def test_unknown_system_is_usage_error(capsys):
    assert main(["verify", "--system", "nope"]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_list_checks(capsys):
    assert main(["verify", "--list-checks"]) == 0
    out = capsys.readouterr().out
    for check in all_checks():
        assert check.id in out


def test_explain_covers_every_check(capsys):
    for check in all_checks():
        assert main(["verify", "--explain", check.id]) == 0
        text = capsys.readouterr().out
        assert check.id in text
        assert "Why it matters:" in text
        assert "repro fuzz replay" in text


def test_explain_falls_back_to_lint_rules(capsys):
    assert main(["verify", "--explain", "det-set-iter"]) == 0
    assert "det-set-iter" in capsys.readouterr().out


def test_explain_unknown_check(capsys):
    assert main(["verify", "--explain", "no-such-check"]) == 2
    assert "unknown check" in capsys.readouterr().err
