"""The exception hierarchy: one base, meaningful subclasses."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    subclasses = [
        errors.ConfigError, errors.SimulationError, errors.AddressError,
        errors.TableOverflowError, errors.ProtocolError,
        errors.RecoveryError, errors.WorkloadError, errors.AllocationError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise cls("boom")


def test_catching_base_catches_library_errors():
    from repro.config import SystemConfig
    with pytest.raises(errors.ReproError):
        SystemConfig(block_bytes=3)
    from repro.workloads.micro import random_trace
    with pytest.raises(errors.ReproError):
        list(random_trace(0, 1))


def test_exit_codes_are_distinct_and_nonzero():
    codes = list(errors.EXIT_CODES.values())
    assert len(codes) == len(set(codes))
    assert all(code not in (0, 1, 2) for code in codes)   # 2 = argparse


def test_exit_code_for_walks_the_mro():
    assert errors.exit_code_for(errors.CrashedError("x")) == \
        errors.EXIT_CODES[errors.CrashedError]
    assert errors.exit_code_for(errors.ReproError("x")) == \
        errors.EXIT_CODES[errors.ReproError]

    class CustomError(errors.WorkloadError):
        pass

    # Unregistered subclass inherits its family's code.
    assert errors.exit_code_for(CustomError("x")) == \
        errors.EXIT_CODES[errors.WorkloadError]
