"""The exception hierarchy: one base, meaningful subclasses."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    subclasses = [
        errors.ConfigError, errors.SimulationError, errors.AddressError,
        errors.TableOverflowError, errors.ProtocolError,
        errors.RecoveryError, errors.WorkloadError, errors.AllocationError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise cls("boom")


def test_catching_base_catches_library_errors():
    from repro.config import SystemConfig
    with pytest.raises(errors.ReproError):
        SystemConfig(block_bytes=3)
    from repro.workloads.micro import random_trace
    with pytest.raises(errors.ReproError):
        list(random_trace(0, 1))
