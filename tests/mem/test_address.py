"""Unit tests for address arithmetic."""

import pytest

from repro.config import small_test_config
from repro.errors import AddressError
from repro.mem.address import AddressMap


@pytest.fixture
def amap():
    return AddressMap(small_test_config())


def test_block_and_page_indexing(amap):
    assert amap.block_index(0) == 0
    assert amap.block_index(63) == 0
    assert amap.block_index(64) == 1
    assert amap.page_index(4095) == 0
    assert amap.page_index(4096) == 1


def test_block_page_relationship(amap):
    for block in (0, 1, 63, 64, 65, 1000):
        page = amap.page_of_block(block)
        assert block in amap.blocks_in_page(page)


def test_blocks_in_page_size(amap):
    blocks = amap.blocks_in_page(3)
    assert len(blocks) == 4096 // 64
    assert amap.page_of_block(blocks.start) == 3
    assert amap.page_of_block(blocks[-1]) == 3


def test_round_trip_addresses(amap):
    assert amap.block_addr(amap.block_index(12345)) == (12345 // 64) * 64
    assert amap.page_addr(amap.page_index(12345)) == (12345 // 4096) * 4096


def test_block_align(amap):
    assert amap.block_align(0) == 0
    assert amap.block_align(100) == 64
    assert amap.block_align(64) == 64


def test_check_bounds(amap):
    amap.check(0)
    amap.check(amap.physical_bytes - 1)
    with pytest.raises(AddressError):
        amap.check(amap.physical_bytes)
    with pytest.raises(AddressError):
        amap.check(-1)


def test_iter_blocks_spanning(amap):
    assert list(amap.iter_blocks(0, 64)) == [0]
    assert list(amap.iter_blocks(60, 8)) == [0, 1]
    assert list(amap.iter_blocks(0, 129)) == [0, 1, 2]
    assert list(amap.iter_blocks(0, 0)) == []
