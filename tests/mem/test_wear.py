"""Tests for per-block wear (write-endurance) tracking."""

from repro.config import nvm_timing
from repro.mem.device import MemoryDevice


def make_device():
    return MemoryDevice("nvm", nvm_timing(), 8192, 4, True)


def test_writes_counted_per_block():
    device = make_device()
    for _ in range(3):
        device.access(0, is_write=True)
    device.access(64, is_write=True)
    device.access(128, is_write=False)      # reads don't wear
    assert device.write_counts[0] == 3
    assert device.write_counts[64] == 1
    assert 128 not in device.write_counts


def test_wear_summary_totals():
    device = make_device()
    device.access(0, is_write=True)
    device.access(0, is_write=True)
    device.access(4096, is_write=True)
    blocks, total, peak = device.wear_summary()
    assert (blocks, total, peak) == (2, 3, 2)


def test_wear_summary_range_filter():
    device = make_device()
    device.access(0, is_write=True)
    device.access(10_000, is_write=True)
    blocks, total, peak = device.wear_summary((0, 4096))
    assert (blocks, total, peak) == (1, 1, 1)
    assert device.wear_summary((20_000, 30_000)) == (0, 0, 0)


def test_wear_survives_row_buffer_reset():
    device = make_device()
    device.access(0, is_write=True)
    device.reset_row_buffers()
    assert device.write_counts[0] == 1
