"""Unit tests for the memory controller (queues, banks, fences, crash)."""

import pytest

from repro.config import small_test_config
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.sim.request import MemoryRequest, Origin
from repro.stats.collector import StatsCollector


@pytest.fixture
def setup():
    config = small_test_config()
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    controller = MemoryController(engine, config, stats)
    return engine, controller, stats, config


def _write(addr, data=None, cb=None):
    return MemoryRequest(addr, True, Origin.CPU, data=data, callback=cb)


def _read(addr, cb=None):
    return MemoryRequest(addr, False, Origin.CPU, callback=cb)


def test_write_then_read_round_trip(setup):
    engine, controller, _stats, _cfg = setup
    payload = b"p" * 64
    controller.submit(DeviceKind.NVM, _write(0, payload))
    got = {}
    controller.submit(DeviceKind.NVM, _read(0, lambda r: got.update(d=r.data)))
    engine.run_until_idle()
    assert got["d"] == payload


def test_read_forwards_from_queued_write(setup):
    """A read must observe a same-address write still in the queue."""
    engine, controller, _stats, cfg = setup
    old = b"o" * 64
    new = b"n" * 64
    controller.submit(DeviceKind.NVM, _write(0, old))
    engine.run_until_idle()
    # Occupy bank 0 with another row so the next write stays queued;
    # the read then gets priority and services before the write.
    blocker_addr = cfg.row_bytes * cfg.num_banks   # bank 0, row 1
    controller.submit(DeviceKind.NVM, _write(blocker_addr))
    controller.submit(DeviceKind.NVM, _write(0, new))
    got = {}
    controller.submit(DeviceKind.NVM, _read(0, lambda r: got.update(d=r.data)))
    engine.run_until_idle()
    assert got["d"] == new


def test_requests_complete_with_latency(setup):
    engine, controller, _stats, _cfg = setup
    request = _write(0)
    controller.submit(DeviceKind.DRAM, request)
    engine.run_until_idle()
    assert request.complete_time is not None
    assert request.latency > 0


def test_queue_full_rejects(setup):
    engine, controller, _stats, cfg = setup
    accepted = 0
    # Same bank/row addresses so nothing drains instantly.
    for i in range(cfg.write_queue_entries + cfg.num_banks + 8):
        if controller.submit(DeviceKind.NVM, _write(i * 64)):
            accepted += 1
    assert accepted < cfg.write_queue_entries + cfg.num_banks + 8


def test_fence_fires_after_covered_writes_only(setup):
    engine, controller, _stats, _cfg = setup
    done = []
    for i in range(8):
        controller.submit(DeviceKind.NVM, _write(i * 64))
    controller.fence_writes(DeviceKind.NVM, lambda: done.append(engine.now))
    # Later writes must not delay the fence.
    for i in range(8, 16):
        controller.submit(DeviceKind.NVM, _write(i * 64))
    engine.run_until_idle()
    assert len(done) == 1


def test_fence_with_no_outstanding_writes_fires_immediately(setup):
    _engine, controller, _stats, _cfg = setup
    done = []
    controller.fence_writes(DeviceKind.NVM, lambda: done.append(1))
    assert done == [1]


def test_bank_parallelism_beats_serial_service(setup):
    engine, controller, _stats, cfg = setup
    # One access per bank: total time should be far less than the sum.
    start = engine.now
    for bank in range(cfg.num_banks):
        controller.submit(DeviceKind.NVM, _write(bank * cfg.row_bytes))
    engine.run_until_idle()
    elapsed = engine.now - start
    single = cfg.nvm.row_miss_clean + cfg.nvm.burst
    assert elapsed < cfg.num_banks * single / 2


def test_crash_loses_queued_writes_keeps_serviced(setup):
    engine, controller, _stats, _cfg = setup
    durable = b"d" * 64
    lost = b"l" * 64
    controller.submit(DeviceKind.NVM, _write(0, durable))
    engine.run_until_idle()
    controller.submit(DeviceKind.NVM, _write(0, lost))
    controller.crash()          # before the second write services
    engine.run_until_idle()
    store = controller.functional_store(DeviceKind.NVM)
    assert store.read(0) == durable


def test_crash_erases_dram_not_nvm(setup):
    engine, controller, _stats, _cfg = setup
    controller.submit(DeviceKind.DRAM, _write(0, b"v" * 64))
    controller.submit(DeviceKind.NVM, _write(0, b"p" * 64))
    engine.run_until_idle()
    controller.crash()
    assert controller.functional_store(DeviceKind.DRAM).read(0) == bytes(64)
    assert controller.functional_store(DeviceKind.NVM).read(0) == b"p" * 64


def test_submit_after_crash_rejected(setup):
    _engine, controller, _stats, _cfg = setup
    controller.crash()
    assert not controller.submit(DeviceKind.NVM, _write(0))
    controller.power_on()
    assert controller.submit(DeviceKind.NVM, _write(0))


def test_idle_tracking(setup):
    engine, controller, _stats, _cfg = setup
    assert controller.idle
    controller.submit(DeviceKind.NVM, _write(0))
    assert not controller.idle
    engine.run_until_idle()
    assert controller.idle


def test_stats_record_origin(setup):
    engine, controller, stats, _cfg = setup
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(0, True, Origin.CHECKPOINT))
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(64, True, Origin.MIGRATION))
    engine.run_until_idle()
    assert stats.nvm_writes.get("checkpoint") == 1
    assert stats.nvm_writes.get("migration") == 1
