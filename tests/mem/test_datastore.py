"""Unit tests for the functional backing stores."""

import pytest

from repro.mem.datastore import FunctionalStore, NullStore


def test_read_unwritten_is_zeros():
    store = FunctionalStore(64)
    assert store.read(0) == bytes(64)


def test_write_then_read():
    store = FunctionalStore(64)
    payload = b"x" * 64
    store.write(128, payload)
    assert store.read(128) == payload
    assert 128 in store
    assert len(store) == 1


def test_none_payload_ignored():
    store = FunctionalStore(64)
    store.write(0, b"y" * 64)
    store.write(0, None)
    assert store.read(0) == b"y" * 64


def test_wrong_size_rejected():
    store = FunctionalStore(64)
    with pytest.raises(ValueError):
        store.write(0, b"short")


def test_copy_block():
    store = FunctionalStore(64)
    store.write(0, b"z" * 64)
    store.copy_block(0, 64)
    assert store.read(64) == b"z" * 64


def test_erase():
    store = FunctionalStore(64)
    store.write(0, b"a" * 64)
    store.erase()
    assert store.read(0) == bytes(64)
    assert len(store) == 0


def test_copy_block_of_unwritten_source_is_zeros():
    store = FunctionalStore(64)
    store.write(64, b"b" * 64)
    store.copy_block(0, 64)          # unwritten source overwrites dst
    assert store.read(64) == bytes(64)


def test_contains_and_len():
    store = FunctionalStore(64)
    assert 0 not in store and len(store) == 0
    store.write(0, b"a" * 64)
    store.write(64, b"b" * 64)
    store.write(64, b"c" * 64)       # overwrite: still one entry
    assert 0 in store and 64 in store and 128 not in store
    assert len(store) == 2


def test_zero_block_is_cached():
    """Read misses share one immutable zero block per store — no fresh
    ``bytes(block_bytes)`` allocation per miss."""
    store = FunctionalStore(64)
    assert store.read(0) is store.read(4096)
    null = NullStore(64)
    assert null.read(0) is null.read(4096)


def test_null_store_is_inert():
    store = NullStore(64)
    store.write(0, b"a" * 64)
    assert store.read(0) == bytes(64)
    assert 0 not in store
    assert len(store) == 0
    store.copy_block(0, 64)
    store.erase()
    store.msync()


# --- bulk run protocol ---------------------------------------------------


def test_write_run_contiguous_buffer():
    store = FunctionalStore(8)
    store.write_run(16, 3, b"A" * 8 + b"B" * 8 + b"C" * 8)
    assert store.read(16) == b"A" * 8
    assert store.read(24) == b"B" * 8
    assert store.read(32) == b"C" * 8


def test_write_run_sequence_with_none_holes():
    store = FunctionalStore(8)
    store.write(24, b"x" * 8)
    store.write_run(16, 3, [b"A" * 8, None, b"C" * 8])
    assert store.read(16) == b"A" * 8
    assert store.read(24) == b"x" * 8     # hole left untouched
    assert store.read(32) == b"C" * 8


def test_read_run_fills_unwritten_with_zeros():
    store = FunctionalStore(8)
    store.write(8, b"y" * 8)
    assert store.read_run(0, 3) == bytes(8) + b"y" * 8 + bytes(8)


def test_copy_run():
    store = FunctionalStore(8)
    store.write_run(0, 2, b"a" * 8 + b"b" * 8)
    store.copy_run(0, 64, 2)
    assert store.read_run(64, 2) == b"a" * 8 + b"b" * 8


def test_write_run_rejects_wrong_sizes():
    store = FunctionalStore(8)
    with pytest.raises(ValueError):
        store.write_run(0, 2, b"tooshort")
    with pytest.raises(ValueError):
        store.write_run(0, 2, [b"x" * 8])            # wrong chunk count
    with pytest.raises(ValueError):
        store.write_run(0, 2, [b"x" * 8, b"short"])  # wrong chunk size


def test_null_store_bulk_ops_inert():
    store = NullStore(8)
    store.write_run(0, 2, b"a" * 16)
    assert store.read_run(0, 2) == bytes(16)
    store.copy_run(0, 64, 2)
    assert len(store) == 0
