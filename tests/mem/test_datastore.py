"""Unit tests for the functional backing stores."""

import pytest

from repro.mem.datastore import FunctionalStore, NullStore


def test_read_unwritten_is_zeros():
    store = FunctionalStore(64)
    assert store.read(0) == bytes(64)


def test_write_then_read():
    store = FunctionalStore(64)
    payload = b"x" * 64
    store.write(128, payload)
    assert store.read(128) == payload
    assert 128 in store
    assert len(store) == 1


def test_none_payload_ignored():
    store = FunctionalStore(64)
    store.write(0, b"y" * 64)
    store.write(0, None)
    assert store.read(0) == b"y" * 64


def test_wrong_size_rejected():
    store = FunctionalStore(64)
    with pytest.raises(ValueError):
        store.write(0, b"short")


def test_copy_block():
    store = FunctionalStore(64)
    store.write(0, b"z" * 64)
    store.copy_block(0, 64)
    assert store.read(64) == b"z" * 64


def test_erase():
    store = FunctionalStore(64)
    store.write(0, b"a" * 64)
    store.erase()
    assert store.read(0) == bytes(64)
    assert len(store) == 0


def test_null_store_is_inert():
    store = NullStore(64)
    store.write(0, b"a" * 64)
    assert store.read(0) == bytes(64)
    assert 0 not in store
    assert len(store) == 0
    store.copy_block(0, 64)
    store.erase()
