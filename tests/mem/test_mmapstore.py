"""MmapStore: conformance vs FunctionalStore, attach/reject, meta slots.

The mmap-backed store must be observationally identical to the
dict-backed reference over the whole datastore protocol — including
across a close-and-reopen, which the in-memory store cannot survive at
all.  The hypothesis drive below interleaves every protocol operation
(single/bulk/copy/erase/reopen) and requires byte-equal reads after
each step; it is the conformance contract docs/PERSISTENCE.md points
at.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, RecoveryError
from repro.mem.datastore import FunctionalStore
from repro.mem.mmapstore import (
    LAYOUT_VERSION, MAGIC, META_SLOT_BYTES, MmapStore)

BLOCK = 64
BLOCKS = 32
CAPACITY = BLOCK * BLOCKS


@pytest.fixture
def image(tmp_path):
    return str(tmp_path / "store.img")


def make(image, **kwargs):
    return MmapStore(BLOCK, CAPACITY, image, **kwargs)


# --- conformance vs the functional reference ------------------------------


def _payload(tag: int) -> bytes:
    return bytes([tag & 0xFF]) * BLOCK


_ops = st.one_of(
    st.tuples(st.just("write"), st.integers(0, BLOCKS - 1),
              st.integers(0, 255)),
    st.tuples(st.just("write_none"), st.integers(0, BLOCKS - 1)),
    st.tuples(st.just("read"), st.integers(0, BLOCKS - 1)),
    st.tuples(st.just("write_run"), st.integers(0, BLOCKS - 1),
              st.integers(1, 6), st.integers(0, 255)),
    st.tuples(st.just("write_run_holes"), st.integers(0, BLOCKS - 1),
              st.lists(st.one_of(st.none(), st.integers(0, 255)),
                       min_size=1, max_size=6)),
    st.tuples(st.just("read_run"), st.integers(0, BLOCKS - 1),
              st.integers(1, 6)),
    st.tuples(st.just("copy_block"), st.integers(0, BLOCKS - 1),
              st.integers(0, BLOCKS - 1)),
    st.tuples(st.just("copy_run"), st.integers(0, BLOCKS - 1),
              st.integers(0, BLOCKS - 1), st.integers(1, 6)),
    st.tuples(st.just("erase")),
    st.tuples(st.just("reopen")),
)


def _clip(start: int, count: int) -> int:
    """Clamp a run so it stays inside the store."""
    return max(1, min(count, BLOCKS - start))


@given(ops=st.lists(_ops, max_size=40))
@settings(max_examples=25, deadline=None)
def test_mmap_store_conforms_to_functional_reference(tmp_path_factory, ops):
    image = str(tmp_path_factory.mktemp("conf") / "store.img")
    reference = FunctionalStore(BLOCK)
    store = make(image)
    try:
        for op in ops:
            kind = op[0]
            if kind == "write":
                _, index, tag = op
                for target in (reference, store):
                    target.write(index * BLOCK, _payload(tag))
            elif kind == "write_none":
                _, index = op
                for target in (reference, store):
                    target.write(index * BLOCK, None)
            elif kind == "read":
                _, index = op
                assert store.read(index * BLOCK) == \
                    reference.read(index * BLOCK)
            elif kind == "write_run":
                _, start, count, tag = op
                count = _clip(start, count)
                data = b"".join(_payload(tag + i) for i in range(count))
                for target in (reference, store):
                    target.write_run(start * BLOCK, count, data)
            elif kind == "write_run_holes":
                _, start, tags = op
                count = _clip(start, len(tags))
                chunks = [None if tag is None else _payload(tag)
                          for tag in tags[:count]]
                for target in (reference, store):
                    target.write_run(start * BLOCK, count, chunks)
            elif kind == "read_run":
                _, start, count = op
                count = _clip(start, count)
                assert store.read_run(start * BLOCK, count) == \
                    reference.read_run(start * BLOCK, count)
            elif kind == "copy_block":
                _, src, dst = op
                for target in (reference, store):
                    target.copy_block(src * BLOCK, dst * BLOCK)
            elif kind == "copy_run":
                _, src, dst, count = op
                count = _clip(src, _clip(dst, count))
                for target in (reference, store):
                    target.copy_run(src * BLOCK, dst * BLOCK, count)
            elif kind == "erase":
                for target in (reference, store):
                    target.erase()
            elif kind == "reopen":
                # The operation FunctionalStore cannot model: contents
                # must survive unmapping and a fresh attach.
                store.close()
                store = make(image, must_exist=True)
                assert store.attached
        # Full-surface equality at the end of every program.
        assert len(store) == len(reference)
        for index in range(BLOCKS):
            addr = index * BLOCK
            assert (addr in store) == (addr in reference)
            assert store.read(addr) == reference.read(addr)
    finally:
        store.close()


def test_contents_survive_close_and_reopen(image):
    store = make(image)
    assert not store.attached
    store.write(0, _payload(1))
    store.write_run(5 * BLOCK, 3, b"".join(_payload(t) for t in (2, 3, 4)))
    store.close()

    again = make(image, must_exist=True)
    try:
        assert again.attached
        assert again.read(0) == _payload(1)
        assert again.read_run(5 * BLOCK, 3) == \
            b"".join(_payload(t) for t in (2, 3, 4))
        assert len(again) == 4
        assert BLOCK not in again        # unwritten stays unwritten
        assert again.read(BLOCK) == bytes(BLOCK)
    finally:
        again.close()


def test_protocol_errors_match_reference(image):
    store = make(image)
    try:
        with pytest.raises(ValueError):
            store.write(1, _payload(0))             # unaligned
        with pytest.raises(ValueError):
            store.write(CAPACITY, _payload(0))      # out of range
        with pytest.raises(ValueError):
            store.write(0, b"short")
        with pytest.raises(ValueError):
            store.write_run(0, 0, b"")
        with pytest.raises(ValueError):
            store.write_run(0, 2, b"short")
        with pytest.raises(ValueError):
            store.write_run(0, 2, [b"x" * BLOCK])
        with pytest.raises(ValueError):
            store.write_run((BLOCKS - 1) * BLOCK, 2, bytes(2 * BLOCK))
        assert CAPACITY not in store     # __contains__ never raises
        assert -BLOCK not in store
    finally:
        store.close()


def test_zero_read_is_cached_singleton(image):
    store = make(image)
    try:
        assert store.read(0) is store.read(BLOCK)
    finally:
        store.close()


# --- attach validation ----------------------------------------------------


def test_must_exist_refuses_fresh_image(image):
    with pytest.raises(RecoveryError):
        make(image, must_exist=True)
    # The refused open must not leave a claimable empty image behind.
    with pytest.raises(RecoveryError):
        make(image, must_exist=True)


def test_attach_refuses_foreign_file(image):
    with open(image, "wb") as handle:
        handle.write(b"not a store image, definitely" * 100)
    with pytest.raises(RecoveryError):
        make(image)


def test_attach_refuses_too_short_file(image):
    with open(image, "wb") as handle:
        handle.write(MAGIC)
    with pytest.raises(RecoveryError):
        make(image)


def test_attach_refuses_corrupt_header_crc(image):
    make(image).close()
    with open(image, "r+b") as handle:
        handle.seek(12)                  # inside the header fields
        handle.write(b"\xff")
    with pytest.raises(RecoveryError):
        make(image)


def test_attach_refuses_version_skew(image):
    make(image).close()
    with open(image, "r+b") as handle:
        raw = bytearray(handle.read())
        header = struct.Struct("<8sIQQQQQQQQ")
        fields = list(header.unpack_from(raw))
        assert fields[1] == LAYOUT_VERSION
        fields[1] = LAYOUT_VERSION + 1
        packed = header.pack(*fields)
        raw[:len(packed)] = packed
        raw[len(packed):len(packed) + 4] = struct.pack(
            "<I", zlib.crc32(packed))    # valid CRC, wrong version
        handle.seek(0)
        handle.write(raw)
    with pytest.raises(RecoveryError):
        make(image)


def test_attach_refuses_geometry_mismatch(image):
    make(image).close()
    with pytest.raises(ConfigError):
        MmapStore(BLOCK, 2 * CAPACITY, image)
    with pytest.raises(ConfigError):
        MmapStore(2 * BLOCK, CAPACITY, image)


def test_attach_refuses_truncated_image(image):
    make(image).close()
    size = os.path.getsize(image)
    os.truncate(image, size - 4096)
    with pytest.raises(RecoveryError):
        make(image)


def test_config_validation():
    with pytest.raises(ConfigError):
        MmapStore(0, CAPACITY, "unused.img")
    with pytest.raises(ConfigError):
        MmapStore(BLOCK, BLOCK + 1, "unused.img")
    with pytest.raises(ConfigError):
        MmapStore(BLOCK, CAPACITY, "unused.img", msync_policy="sometimes")


# --- meta records ---------------------------------------------------------


def test_meta_roundtrip_and_reopen(image):
    store = make(image)
    assert store.read_meta() is None
    store.write_meta(b"epoch 1")
    store.write_meta(b"epoch 2")
    assert store.read_meta() == b"epoch 2"
    store.close()

    again = make(image, must_exist=True)
    try:
        assert again.read_meta() == b"epoch 2"
        again.write_meta(b"epoch 3")     # sequence resumes, not restarts
        assert again.read_meta() == b"epoch 3"
    finally:
        again.close()


def test_meta_torn_slot_falls_back_to_previous_record(image):
    store = make(image)
    store.write_meta(b"committed record")
    store.write_meta(b"torn record")
    # Corrupt the payload of the newest slot (seq 2 -> slot 0) without
    # touching its stored CRC: a torn write.
    offset = store._meta_offset + struct.Struct("<QQI").size
    store._map[offset:offset + 4] = b"XXXX"
    assert store.read_meta() == b"committed record"
    store.close()


def test_meta_rejects_oversized_payload(image):
    store = make(image)
    try:
        with pytest.raises(ValueError):
            store.write_meta(b"x" * META_SLOT_BYTES)
    finally:
        store.close()


# --- msync policies -------------------------------------------------------


@pytest.mark.parametrize("policy", ["none", "commit", "always"])
def test_msync_policies_accepted(image, policy):
    store = make(image, msync_policy=policy)
    try:
        store.write(0, _payload(9))
        store.msync()
        assert store.read(0) == _payload(9)
    finally:
        store.close()


# --- out-of-core scale ----------------------------------------------------


def test_gb_scale_sparse_image_stays_out_of_core(tmp_path):
    """A GB-addressable store is a sparse file: capacity is disk-backed
    address space, not resident heap, so a handful of writes must not
    materialize gigabytes anywhere."""
    path = str(tmp_path / "big.img")
    block = 4096
    capacity = 2 * 1024 ** 3             # 2 GiB data region
    store = MmapStore(block, capacity, path, msync_policy="none")
    try:
        top = capacity - block
        store.write(0, b"a" * block)
        store.write(capacity // 2, b"b" * block)
        store.write(top, b"c" * block)
        assert store.read(0) == b"a" * block
        assert store.read(capacity // 2) == b"b" * block
        assert store.read(top) == b"c" * block
        assert store.read(block) == bytes(block)
        assert len(store) == 3
        stat = os.stat(path)
        assert stat.st_size > capacity   # full address space on disk...
        # ...but only a few touched pages actually allocated (st_blocks
        # is in 512-byte sectors; allow generous slack for metadata).
        assert stat.st_blocks * 512 < 64 * 1024 * 1024
    finally:
        store.close()

    again = MmapStore(block, capacity, path, msync_policy="none",
                      must_exist=True)
    try:
        assert again.read(capacity // 2) == b"b" * block
    finally:
        again.close()
