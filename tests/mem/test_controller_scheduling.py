"""Scheduling-policy tests for the memory controller."""

import pytest

from repro.config import small_test_config
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.sim.request import MemoryRequest, Origin
from repro.stats.collector import StatsCollector


@pytest.fixture
def setup():
    config = small_test_config()
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    controller = MemoryController(engine, config, stats)
    return engine, controller, stats, config


def test_reads_prioritized_over_writes(setup):
    engine, controller, _stats, cfg = setup
    # Fill one bank with work, then queue a write and a read to it.
    bank0_row0 = 0
    bank0_row1 = cfg.row_bytes * cfg.num_banks
    done = []
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(bank0_row1, True, Origin.CPU))  # busy
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(bank0_row0, True, Origin.CPU,
                                    callback=lambda r: done.append("w")))
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(bank0_row0 + 64, False, Origin.CPU,
                                    callback=lambda r: done.append("r")))
    engine.run_until_idle()
    assert done.index("r") < done.index("w")


def test_demand_reads_beat_migration_reads(setup):
    engine, controller, _stats, cfg = setup
    bank0_rows = [cfg.row_bytes * cfg.num_banks * i for i in range(4)]
    done = []
    # Occupy the bank, then queue migration reads ahead of a demand read.
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(bank0_rows[0], False, Origin.CPU))
    for row in bank0_rows[1:3]:
        controller.submit(DeviceKind.NVM,
                          MemoryRequest(row, False, Origin.MIGRATION,
                                        callback=lambda r: done.append("m")))
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(bank0_rows[3], False, Origin.CPU,
                                    callback=lambda r: done.append("d")))
    engine.run_until_idle()
    assert done.index("d") < done.index("m")


def test_write_drain_watermark(setup):
    engine, controller, _stats, cfg = setup
    # Saturate the write queue past the high watermark while keeping a
    # steady read supply: writes must still drain (no starvation).
    served = {"w": 0}
    for i in range(cfg.write_queue_entries):
        controller.submit(DeviceKind.NVM,
                          MemoryRequest(i * 64, True, Origin.CPU,
                                        callback=lambda r: _inc(served)))

    def _inc(counter):
        counter["w"] += 1

    def feed_reads(n=0):
        if n >= 50:
            return
        controller.submit(DeviceKind.NVM,
                          MemoryRequest((n % 4) * 64, False, Origin.CPU))
        engine.schedule(100, lambda: feed_reads(n + 1))

    feed_reads()
    engine.run_until_idle()
    assert served["w"] == cfg.write_queue_entries


def test_row_hits_preferred_within_ready_set(setup):
    engine, controller, stats, cfg = setup
    device = controller._states[DeviceKind.NVM].device
    # Open row 0, then (while the bank is busy on another row-0 access)
    # queue a conflicting request before a row hit.
    controller.submit(DeviceKind.NVM, MemoryRequest(0, False, Origin.CPU))
    engine.run_until_idle()
    hits_before = device.row_hits
    conflict = cfg.row_bytes * cfg.num_banks        # same bank, other row
    done = []
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(128, False, Origin.CPU))   # blocker
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(conflict, False, Origin.CPU,
                                    callback=lambda r: done.append("miss")))
    controller.submit(DeviceKind.NVM,
                      MemoryRequest(64, False, Origin.CPU,
                                    callback=lambda r: done.append("hit")))
    engine.run_until_idle()
    # Both eventually service; the row hit went first.
    assert done[0] == "hit"
    assert device.row_hits > hits_before
