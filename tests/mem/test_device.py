"""Unit tests for the bank + row-buffer timing model."""

from repro.config import dram_timing, nvm_timing
from repro.mem.device import MemoryDevice
from repro.units import ns_to_cycles


def make_nvm(banks=4, row_bytes=8192):
    return MemoryDevice("nvm", nvm_timing(), row_bytes, banks, True)


def make_dram(banks=4, row_bytes=8192):
    return MemoryDevice("dram", dram_timing(), row_bytes, banks, False)


def test_first_access_is_clean_miss():
    device = make_nvm()
    latency = device.access(0, is_write=False)
    assert latency == ns_to_cycles(128) + ns_to_cycles(5)
    assert device.row_misses == 1


def test_row_hit_after_open():
    device = make_nvm()
    device.access(0, is_write=False)
    latency = device.access(64, is_write=False)   # same row
    assert latency == ns_to_cycles(40) + ns_to_cycles(5)
    assert device.row_hits == 1


def test_dirty_row_eviction_costs_more():
    device = make_nvm(banks=1)
    device.access(0, is_write=True)               # opens + dirties row 0
    latency = device.access(8192, is_write=False)  # row conflict, dirty
    assert latency == ns_to_cycles(368) + ns_to_cycles(5)


def test_clean_row_conflict_cheaper_than_dirty():
    device = make_nvm(banks=1)
    device.access(0, is_write=False)
    clean = device.access(8192, is_write=False)
    device.access(0, is_write=True)
    dirty = device.access(8192, is_write=False)
    assert dirty > clean


def test_dram_dirty_miss_equals_clean_miss():
    device = make_dram(banks=1)
    device.access(0, is_write=True)
    latency = device.access(8192, is_write=False)
    assert latency == ns_to_cycles(80) + ns_to_cycles(5)


def test_banks_are_independent():
    device = make_nvm(banks=2, row_bytes=64)
    # Rows interleave across banks: addresses 0 and 64 hit banks 0, 1.
    assert device.decode(0)[0] != device.decode(64)[0]
    device.access(0, is_write=False)
    device.access(64, is_write=False)
    # Both were misses in their own banks.
    assert device.row_misses == 2
    # Re-access both: hits in both banks.
    device.access(0, is_write=False)
    device.access(64, is_write=False)
    assert device.row_hits == 2


def test_would_row_hit_matches_access():
    device = make_nvm()
    assert not device.would_row_hit(0)
    device.access(0, is_write=False)
    assert device.would_row_hit(0)
    assert device.would_row_hit(4096)   # same row


def test_reset_row_buffers():
    device = make_nvm()
    device.access(0, is_write=True)
    device.reset_row_buffers()
    assert not device.would_row_hit(0)
    # After reset the row is clean again (no dirty eviction penalty).
    latency = device.access(0, is_write=False)
    assert latency == ns_to_cycles(128) + ns_to_cycles(5)
