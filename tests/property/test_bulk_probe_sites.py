"""Runtime bulk-run writes vs. the static ``BULK_WRITE`` surface.

Three pins between the batched array-core and the analysis stack:

1. **Prediction**: the ``bulk-write`` probe (one notification per
   durable block of a checkpoint bulk run) only ever fires from code
   the static effect graph classifies with ``Effect.BULK_WRITE`` —
   the fuzz taxonomy anchors the kind to those sites.
2. **Mode equivalence**: toggling ``USE_BULK_RUNS`` off (the per-block
   reference core) changes *nothing* about the probe census except
   that ``bulk-write`` stops firing — every other site fires the same
   number of times in both cores.
3. **Both branches analyzed**: the effect graph carries events for the
   bulk arm and the reference arm of every ``USE_BULK_RUNS`` branch,
   so the analyzer never depends on which core the environment picked.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.baselines.shadow as shadow
from repro.analysis.effects import Effect, EffectGraph
from repro.analysis.context import load_module
from repro.fuzz.runner import census
from repro.fuzz.sites import effect_surface


@pytest.fixture
def census_pair(monkeypatch):
    """Site censuses of the same shadow workload under both cores."""

    def run(use_bulk):
        monkeypatch.setattr(shadow, "USE_BULK_RUNS", use_bulk)
        return census("shadow", "sparse", seed=3, epochs=2, blocks=8)

    bulk = run(True)
    reference = run(False)
    return bulk, reference


def test_bulk_write_probe_is_statically_anchored(census_pair):
    bulk, _ = census_pair
    fired = {key for key in bulk if key.startswith("bulk-write")}
    assert fired, "bulk core fired no bulk-write probes"
    # Shadow's flush runs in the data stage (index 1: the CPU-state
    # stage is prepended), and that is the only stage built as runs.
    assert fired == {"bulk-write.1"}
    surface = effect_surface()
    sites = surface[Effect.BULK_WRITE.value]
    assert sites, "static surface has no BULK_WRITE sites"
    # The probe fires from CheckpointRun's bulk write admissions.
    assert any("checkpoint.py::CheckpointRun." in site for site in sites)


def test_reference_core_census_differs_only_in_bulk_write(census_pair):
    bulk, reference = census_pair
    assert not any(key.startswith("bulk-write") for key in reference)
    assert {key: count for key, count in bulk.items()
            if not key.startswith("bulk-write")} == reference


def test_bulk_write_count_matches_flush_traffic(census_pair):
    bulk, _ = census_pair
    # Every durable flush block notifies exactly once: the census count
    # is a multiple of a full page run and covers both checkpoints.
    from repro.fuzz.runner import fuzz_config
    config = fuzz_config()
    count = bulk["bulk-write.1"]
    assert count > 0
    assert count % config.blocks_per_page == 0


def test_effect_graph_analyzes_both_core_modes():
    module = load_module(Path(shadow.__file__))
    graph = EffectGraph.build([module])
    modes = {event.mode
             for info in graph.functions.values()
             for event in info.events}
    assert {"bulk", "reference"} <= modes
