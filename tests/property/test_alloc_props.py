"""Property-based tests for the simulated-heap allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.workloads.kvstore.alloc import Allocator

ARENA = 64 * 1024


@st.composite
def alloc_programs(draw):
    """A sequence of alloc(size) / free(index-of-live-alloc) steps."""
    steps = draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 2048)),
            st.tuples(st.just("free"), st.integers(0, 10 ** 6)),
        ),
        min_size=1, max_size=120))
    return steps


@given(alloc_programs())
@settings(max_examples=60, deadline=None)
def test_allocations_never_overlap_and_always_coalesce(steps):
    allocator = Allocator(0, ARENA)
    live = {}   # addr -> size
    for op, value in steps:
        if op == "alloc":
            try:
                addr = allocator.alloc(value)
            except AllocationError:
                continue
            # 8-byte alignment and no overlap with any live allocation.
            assert addr % 8 == 0
            end = addr + value
            for other, other_size in live.items():
                assert end <= other or addr >= other + other_size + (
                    (-other_size) % 8)
            live[addr] = value
        elif live:
            addr = sorted(live)[value % len(live)]
            allocator.free(addr)
            del live[addr]
        allocator.check_invariants()
    # Conservation: in-use bytes equal the sum of live (aligned) sizes.
    expected = sum(size + ((-size) % 8) for size in live.values())
    assert allocator.bytes_in_use == expected


@given(st.lists(st.integers(1, 512), min_size=1, max_size=64))
@settings(max_examples=40, deadline=None)
def test_free_everything_restores_full_arena(sizes):
    allocator = Allocator(0, ARENA)
    addrs = []
    for size in sizes:
        try:
            addrs.append(allocator.alloc(size))
        except AllocationError:
            break
    for addr in addrs:
        allocator.free(addr)
    allocator.check_invariants()
    assert allocator.free_bytes == ARENA
    # The whole arena is allocatable again in one piece.
    assert allocator.alloc(ARENA) == 0
