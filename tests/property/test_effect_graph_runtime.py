"""Static effect graph vs. live simulation.

Two pins between ``repro.analysis.effects`` and the running system:

1. **Superset**: every write effect *observed* at runtime (who called
   ``_issue_write`` / ``_issue_fire_and_forget`` / ``_table_persist_jobs``,
   and against which device) must be *predicted* by the static effect
   graph for that caller.  A runtime effect with no static counterpart
   would mean the persist-order rules are analyzing a fiction.
2. **Data before metadata** (paper §4.4): whenever the checkpoint
   pipeline reaches the commit-record write, the NVM write queue has
   fully drained — the invariant the ``persist-unfenced-commit`` rule
   enforces statically.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import Effect, EffectGraph
from repro.analysis.context import load_module
from repro.core.checkpoint import CheckpointRun
from repro.core.controller import ThyNVMController
from repro.mem.controller import DeviceKind
from repro.sim.request import Origin

from ..conftest import end_epoch, make_direct, read_block, settle, write_block

SRC = Path(repro.__file__).parent

WRITE_EFFECTS = {Effect.DATA_WRITE, Effect.VOLATILE_WRITE}


def _static_effects_by_name():
    modules = [load_module(path) for path in sorted(SRC.rglob("*.py"))]
    graph = EffectGraph.build(modules)
    by_name = {}
    for info in graph.functions.values():
        effects = {event.effect for event in info.events
                   if event.effect is not None}
        by_name.setdefault(info.name, set()).update(effects)
    return by_name


STATIC = _static_effects_by_name()


@pytest.fixture
def traced_system(monkeypatch):
    observed = []

    def trace(method_name):
        original = getattr(ThyNVMController, method_name)

        def wrapper(self, *args, **kwargs):
            caller = sys._getframe(1).f_code.co_name
            observed.append((caller, method_name, args, kwargs))
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ThyNVMController, method_name, wrapper)

    for name in ("_issue_write", "_issue_fire_and_forget",
                 "_table_persist_jobs"):
        trace(name)

    commits = []
    original_write_commit = CheckpointRun._write_commit

    def checked_write_commit(self):
        # §4.4: the fence completed — nothing durable may still be queued
        # when the commit record goes out.
        depth = self.memctrl.queue_depth(DeviceKind.NVM, True)
        assert depth == 0, (
            f"commit record issued with {depth} NVM write(s) still queued")
        commits.append(self.engine.now)
        return original_write_commit(self)

    monkeypatch.setattr(CheckpointRun, "_write_commit", checked_write_commit)

    system = make_direct()
    system.observed = observed
    system.commits = commits
    return system


def _drive(system):
    for block in range(8):
        write_block(system, block, bytes([block]))
    settle(system.engine)
    end_epoch(system)
    for block in range(4):
        write_block(system, block, bytes([0x40 + block]))
        assert read_block(system, block) == bytes(
            [0x40 + block]).ljust(system.config.block_bytes, b"\0")
    end_epoch(system)
    end_epoch(system)


def test_runtime_write_effects_are_statically_predicted(traced_system):
    _drive(traced_system)
    assert traced_system.observed, "workload produced no write effects"
    seen_callers = set()
    for caller, method, args, kwargs in traced_system.observed:
        assert caller in STATIC, (
            f"runtime caller {caller!r} unknown to the static graph")
        effects = STATIC[caller]
        seen_callers.add(caller)
        if method == "_table_persist_jobs":
            assert Effect.TABLE_PERSIST in effects, caller
            continue
        kind = args[0] if args else kwargs.get("kind")
        if method == "_issue_fire_and_forget":
            is_write = args[2] if len(args) > 2 else kwargs.get("is_write")
            if not is_write:
                continue            # reads carry no write effect
        if kind is DeviceKind.NVM:
            # A durable write must be statically durable — never
            # downgraded to a volatile effect.
            assert Effect.DATA_WRITE in effects, (caller, effects)
        else:
            assert effects & WRITE_EFFECTS, (caller, effects)
    # The workload exercised more than one distinct static call site.
    assert len(seen_callers) >= 2


def test_nvm_queue_is_drained_at_every_commit_record(traced_system):
    _drive(traced_system)
    # Three forced epoch ends -> at least three checkpoint commits, each
    # of which passed the queue-drained assertion inside the wrapper.
    assert len(traced_system.commits) >= 3


def test_static_graph_classifies_the_controller_pipeline():
    # The functions the runtime test hooks must exist statically with
    # the effects the hooks assume; if the controller is refactored this
    # pins the two tests together.
    for name in ("_issue_write", "_issue_fire_and_forget",
                 "_table_persist_jobs"):
        assert name in STATIC, f"hooked method {name!r} vanished"
    assert any(Effect.TABLE_PERSIST in effects for effects in STATIC.values())
    assert any(Effect.COMMIT in effects for effects in STATIC.values())
    assert any(Effect.FENCE in effects for effects in STATIC.values())
    # _drain_and_commit is where the runtime drain assertion anchors.
    assert Effect.FENCE in STATIC["_drain_and_commit"]
