"""Property test pinning the indexed ``pop_ready`` to its reference.

``BoundedQueue.pop_ready`` selects with a per-address index and a
packed integer key (docs/PERFORMANCE.md).  The straight-line reference
below states the FR-FCFS semantics directly — same-address FIFO by a
quadratic older-scan, ordering by a lexicographic tuple.  The two must
pick identical requests in identical order for every enqueue/pop
interleaving, or an optimization has changed simulated behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queueing import BoundedQueue
from repro.sim.request import MemoryRequest, Origin

NUM_BANKS = 4
NUM_ADDRS = 12          # small space so same-address chains are common


def make_request(addr_idx: int, demand: bool) -> MemoryRequest:
    request = MemoryRequest(
        addr_idx * 64, True, Origin.CPU if demand else Origin.MIGRATION)
    # The controller caches the device decode at submit; mirror that.
    request.bank = addr_idx % NUM_BANKS
    request.row = addr_idx // NUM_BANKS
    return request


def reference_pop_ready(items, busy_banks, open_rows, demand_priority):
    """The pre-optimization semantics, written for clarity not speed."""
    best = None
    best_key = None
    for index, request in enumerate(items):
        if request.bank in busy_banks:
            continue
        if any(older.addr == request.addr for older in items[:index]):
            continue
        key = (
            0 if (not demand_priority or request.demand) else 1,
            0 if open_rows[request.bank] == request.row else 1,
            index,
        )
        if best_key is None or key < best_key:
            best, best_key = request, key
    return best


enqueue_op = st.tuples(
    st.just("enqueue"),
    st.integers(0, NUM_ADDRS - 1),
    st.booleans(),
)
pop_op = st.tuples(
    st.just("pop"),
    st.sets(st.integers(0, NUM_BANKS - 1)),
    st.lists(st.one_of(st.none(), st.integers(0, NUM_ADDRS // NUM_BANKS)),
             min_size=NUM_BANKS, max_size=NUM_BANKS),
    st.booleans(),
)


@given(st.lists(st.one_of(enqueue_op, pop_op), max_size=80))
@settings(max_examples=200, deadline=None)
def test_pop_ready_matches_reference(ops):
    queue = BoundedQueue("q", 16)
    mirror = []
    for op in ops:
        if op[0] == "enqueue":
            _, addr_idx, demand = op
            request = make_request(addr_idx, demand)
            if queue.try_enqueue(request):
                mirror.append(request)
        else:
            _, busy_banks, open_rows, demand_priority = op
            expected = reference_pop_ready(
                mirror, busy_banks, open_rows, demand_priority)
            got = queue.pop_ready(
                busy_banks, open_rows, demand_priority=demand_priority)
            assert got is expected
            if got is not None:
                mirror.remove(got)
        assert len(queue) == len(mirror)
