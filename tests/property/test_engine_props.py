"""Property tests for the event engine and cache structures."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.config import CacheConfig
from repro.sim.engine import Engine


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(engine.now))
    engine.run_until_idle()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@given(st.lists(st.tuples(st.integers(0, 511), st.booleans()),
                min_size=1, max_size=400))
@settings(max_examples=50, deadline=None)
def test_cache_dirty_counter_always_exact(accesses):
    cache = Cache("p", CacheConfig(2048, 4, 64, 1))
    model = OrderedDict()   # resident block -> dirty (approximate LRU oracle)
    for block, is_write in accesses:
        addr = block * 64
        if cache.lookup(addr):
            if is_write:
                cache.mark_dirty(addr)
        else:
            cache.insert(addr, dirty=is_write)
        # Invariant under test: the O(1) counter equals a full recount.
        recount = sum(
            1 for entries in cache._sets.values()
            for dirty in entries.values() if dirty)
        assert cache.dirty_block_count() == recount
    cleaned = cache.clean_dirty_blocks()
    assert cache.dirty_block_count() == 0
    assert len(set(cleaned)) == len(cleaned)


@given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_cache_never_exceeds_capacity(blocks):
    config = CacheConfig(1024, 2, 64, 1)
    cache = Cache("p", config)
    for block in blocks:
        cache.insert(block * 64, dirty=False)
        assert cache.resident_blocks <= config.num_sets * config.ways
    # Everything ever inserted either resides or was evicted — lookups
    # never fabricate hits for untouched blocks.
    assert not cache.lookup((max(blocks) + 1) * 64, touch=False)
