"""The live controller stays inside the model checker's state space.

`repro verify` explores abstract machines whose phase and per-block
protocol-state edges are checked against the static transition tables.
This test closes the loop from the runtime side: drive a real ThyNVM
controller through writes, epoch boundaries and a page promotion, and
assert every *observed* phase edge and per-block protocol-state edge
was explored by the abstract machine — the model is an
over-approximation of what the hardware actually does, so a clean
verify verdict covers the executions the simulator exhibits.
"""

from repro.analysis.verify import build_exploration, extract_facts
from repro.core.epoch import Phase
from repro.core.versions import classify_block_state

from ..conftest import make_direct, pad, run_until, settle, write_block

BLOCKS = 8


def _machine_edges():
    facts = extract_facts()
    exploration = build_exploration("thynvm", facts)
    state_edges = set()
    for edges in exploration.state_edges.values():
        state_edges.update(edges)
    return exploration.phase_edges, state_edges


def _observed_run():
    system = make_direct()
    ctl = system.ctl
    phase_edges = set()
    state_edges = set()

    original_set_phase = ctl.epochs._set_phase

    def recording_set_phase(new):
        old = ctl.epochs.phase
        if old is not new:
            phase_edges.add((old.name, new.name))
        original_set_phase(new)

    ctl.epochs._set_phase = recording_set_phase

    states = {block: "HOME" for block in range(BLOCKS)}

    def observe():
        for block in range(BLOCKS):
            if ctl.ptt.lookup(ctl.addresses.page_of_block(block)):
                continue
            state = classify_block_state(ctl.btt.lookup(block),
                                         ctl.epochs.active_epoch,
                                         ctl.epochs.ckpt_epoch).name
            if state != states[block]:
                state_edges.add((states[block], state))
                states[block] = state

    for epoch in range(3):
        for block in range(BLOCKS):
            write_block(system, block, pad(b"%d" % epoch))
            observe()
        settle(system.engine, 200_000)
        observe()
        run_until(system.engine,
                  lambda: ctl.epochs.phase is Phase.EXECUTING)
        observe()
        ctl.force_epoch_end("prop")
        observe()
        run_until(system.engine,
                  lambda: ctl.committed_meta.epoch >= epoch)
        observe()
    return phase_edges, state_edges


def test_runtime_edges_subset_of_abstract_exploration():
    machine_phase, machine_state = _machine_edges()
    observed_phase, observed_state = _observed_run()

    assert observed_phase, "run observed no phase transitions"
    assert observed_phase <= machine_phase, \
        f"unexplored phase edges: {sorted(observed_phase - machine_phase)}"

    assert observed_state, "run observed no protocol-state transitions"
    assert observed_state <= machine_state, \
        f"unexplored state edges: {sorted(observed_state - machine_state)}"
