"""Property-based tests: the hash table matches a model dict under
arbitrary operation sequences, and its heap usage is conserved."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.kvstore.alloc import Allocator
from repro.workloads.kvstore.hashtable import HashTable
from repro.workloads.kvstore.recmem import RecordingMemory

KEYS = st.integers(1, 80)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS,
                  st.binary(min_size=1, max_size=48)),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("search"), KEYS, st.just(b"")),
    ),
    min_size=1, max_size=200)


@given(OPS)
@settings(max_examples=50, deadline=None)
def test_hashtable_matches_model(ops):
    memory = RecordingMemory(512 * 1024, work_per_access=0)
    allocator = Allocator(64, 512 * 1024 - 64)
    table = HashTable(memory, allocator, bucket_count=16)   # force chains
    model = {}
    for op, key, value in ops:
        if op == "insert":
            assert table.insert(key, value) == (key not in model)
            model[key] = value
        elif op == "delete":
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table.search(key) == model.get(key)
        memory.drain_ops()
    assert len(table) == len(model)
    for key, value in model.items():
        assert table.search(key) == value
    allocator.check_invariants()


@given(st.lists(st.tuples(KEYS, st.binary(min_size=1, max_size=32)),
                min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_heap_is_conserved_after_deleting_everything(pairs):
    memory = RecordingMemory(256 * 1024, work_per_access=0)
    allocator = Allocator(64, 256 * 1024 - 64)
    table = HashTable(memory, allocator, bucket_count=32)
    baseline = allocator.bytes_in_use          # bucket array
    for key, value in pairs:
        table.insert(key, value)
    for key, _value in pairs:
        table.delete(key)
    assert len(table) == 0
    assert allocator.bytes_in_use == baseline
    allocator.check_invariants()
