"""Batched bulk-run core vs per-block reference core equivalence.

The shadow-paging baseline is the heaviest bulk-run user: every
copy-on-write and every page checkpoint is issued as one read run and
one write run instead of a per-block request storm.  The pre-rewrite
per-block path is kept selectable (``repro.baselines.shadow
.USE_BULK_RUNS``, or the ``REPRO_REFERENCE_CORE`` environment variable)
precisely so this test can drive random workloads through both cores
and require byte-identical ``summary()`` output — cycles, traffic
breakdowns, epoch counts, stall attribution, everything.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.baselines.shadow as shadow
from repro.harness.experiments import MICRO_FOOTPRINT, experiment_config
from repro.harness.runner import execute, run_workload
from repro.harness.systems import build_system
from repro.workloads.tracespec import micro_spec


def _shadow_summary(workload: str, ops: int, seed: int,
                    use_bulk_runs: bool) -> dict:
    saved = shadow.USE_BULK_RUNS
    shadow.USE_BULK_RUNS = use_bulk_runs
    try:
        spec = micro_spec(workload, MICRO_FOOTPRINT, ops, seed=seed)
        result = run_workload("shadow", spec.build(), experiment_config())
    finally:
        shadow.USE_BULK_RUNS = saved
    # Round-trip through JSON so "byte-identical" means the serialized
    # form, exactly like the golden-determinism guard.
    return json.loads(json.dumps(result.stats.summary(), sort_keys=True))


@given(workload=st.sampled_from(("random", "streaming", "sliding")),
       ops=st.integers(min_value=100, max_value=350),
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_bulk_core_summary_byte_identical_to_reference(workload, ops, seed):
    batched = _shadow_summary(workload, ops, seed, use_bulk_runs=True)
    reference = _shadow_summary(workload, ops, seed, use_bulk_runs=False)
    assert batched == reference


def test_bulk_core_collapses_issued_request_count():
    """The copy-amplification fix: the batched core issues an order of
    magnitude fewer producer-API requests for the same per-block
    traffic (the serviced-block counters are unchanged)."""
    def run(use_bulk_runs: bool):
        saved = shadow.USE_BULK_RUNS
        shadow.USE_BULK_RUNS = use_bulk_runs
        try:
            spec = micro_spec("random", MICRO_FOOTPRINT, 2000, seed=1)
            machine = build_system("shadow", experiment_config())
            result = execute(machine, spec.build())
        finally:
            shadow.USE_BULK_RUNS = saved
        stats = result.stats
        blocks = (stats.nvm_reads.total() + stats.nvm_writes.total()
                  + stats.dram_reads.total() + stats.dram_writes.total())
        return blocks, machine.memctrl.requests_issued

    batched_blocks, batched_issued = run(use_bulk_runs=True)
    reference_blocks, reference_issued = run(use_bulk_runs=False)

    assert batched_blocks == reference_blocks
    assert batched_issued * 10 <= reference_issued, (
        f"expected >=10x issued-request reduction, got "
        f"{reference_issued} -> {batched_issued}")
