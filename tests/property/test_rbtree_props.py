"""Property-based tests: the red-black tree matches a model dict and
keeps its invariants under arbitrary operation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.kvstore.alloc import Allocator
from repro.workloads.kvstore.rbtree import RedBlackTree
from repro.workloads.kvstore.recmem import RecordingMemory

KEYS = st.integers(1, 64)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS, st.binary(min_size=0, max_size=40)),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("search"), KEYS, st.just(b"")),
    ),
    min_size=1, max_size=150)


@given(OPS)
@settings(max_examples=50, deadline=None)
def test_rbtree_matches_model(ops):
    memory = RecordingMemory(1024 * 1024, work_per_access=0)
    tree = RedBlackTree(memory, Allocator(64, 1024 * 1024 - 64))
    model = {}
    for op, key, value in ops:
        if op == "insert":
            tree.insert(key, value)
            model[key] = value
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.search(key) == model.get(key)
        memory.drain_ops()
    tree.check_invariants()
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.search(key) == value
