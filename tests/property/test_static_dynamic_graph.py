"""Property tests: declared transition tables == enforced transition
tables.

The analyzer's graph extractor pulls ``ALLOWED_TRANSITIONS`` and
``PHASE_TRANSITIONS`` straight out of the source AST; these tests pin
that static view to the runtime validators: the graphs are identical,
every state is statically reachable, none are dead, and random walks
driven through the validators can only ever visit statically-reachable
states.
"""

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (dead_states, extract_enum_members,
                            extract_transition_table, reachable)
from repro.core import epoch as epoch_mod
from repro.core import versions as versions_mod
from repro.core.epoch import (INITIAL_PHASE, PHASE_TRANSITIONS, Phase,
                              validate_phase_transition)
from repro.core.versions import (ALLOWED_TRANSITIONS, ProtocolState,
                                 validate_transition)
from repro.errors import ProtocolError


def _parse(module):
    return ast.parse(Path(module.__file__).read_text(encoding="utf-8"))


_VERSIONS_TREE = _parse(versions_mod)
_STATIC_STATES = extract_transition_table(
    _VERSIONS_TREE, "ALLOWED_TRANSITIONS", "ProtocolState")
_EPOCH_TREE = _parse(epoch_mod)
_STATIC_PHASES = extract_transition_table(
    _EPOCH_TREE, "PHASE_TRANSITIONS", "Phase")


def _runtime_graph(table):
    return {state.name: frozenset(dest.name for dest in dests)
            for state, dests in table.items()}


def test_static_state_graph_matches_runtime():
    assert _STATIC_STATES == _runtime_graph(ALLOWED_TRANSITIONS)
    members = extract_enum_members(_VERSIONS_TREE, "ProtocolState")
    assert set(members) == {state.name for state in ProtocolState}
    assert reachable(_STATIC_STATES, "HOME") == frozenset(members)
    assert dead_states(_STATIC_STATES, members) == []


def test_static_phase_graph_matches_runtime():
    assert _STATIC_PHASES == _runtime_graph(PHASE_TRANSITIONS)
    members = extract_enum_members(_EPOCH_TREE, "Phase")
    assert set(members) == {phase.name for phase in Phase}
    assert reachable(_STATIC_PHASES, INITIAL_PHASE.name) == frozenset(members)
    assert dead_states(_STATIC_PHASES, members) == []


@given(st.lists(st.sampled_from(sorted(ProtocolState, key=lambda s: s.name)),
                max_size=40))
@settings(max_examples=200, deadline=None)
def test_state_walks_stay_statically_reachable(proposals):
    """Random transition proposals filtered through validate_transition
    can never leave the statically-reachable-from-HOME set."""
    reachable_names = reachable(_STATIC_STATES, ProtocolState.HOME.name)
    state = ProtocolState.HOME
    for proposal in proposals:
        try:
            validate_transition(state, proposal)
        except ProtocolError:
            # Rejected transitions must also be statically absent.
            assert proposal.name not in _STATIC_STATES.get(
                state.name, frozenset())
            continue
        if proposal is not state:
            assert proposal.name in _STATIC_STATES[state.name]
        state = proposal
        assert state.name in reachable_names


@given(st.lists(st.sampled_from(sorted(Phase, key=lambda p: p.name)),
                max_size=40))
@settings(max_examples=200, deadline=None)
def test_phase_walks_stay_statically_reachable(proposals):
    reachable_names = reachable(_STATIC_PHASES, INITIAL_PHASE.name)
    phase = INITIAL_PHASE
    for proposal in proposals:
        try:
            validate_phase_transition(phase, proposal)
        except ProtocolError:
            assert proposal.name not in _STATIC_PHASES.get(
                phase.name, frozenset())
            continue
        if proposal is not phase:
            assert proposal.name in _STATIC_PHASES[phase.name]
        phase = proposal
        assert phase.name in reachable_names
