"""Property-based crash-consistency: the reproduction's core invariant.

Hypothesis generates arbitrary schedules of writes, epoch boundaries,
simulated-time advances and one crash point; recovery must always
produce exactly the physical image of the last committed epoch
boundary.  This is the executable analogue of the paper's formal
protocol verification [66].
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.epoch import Phase

from ..conftest import make_direct, pad, run_until, settle, write_block

BLOCKS = 40


def token(epoch, block, salt):
    return pad(f"s{salt}e{epoch}b{block}".encode())


@st.composite
def schedules(draw):
    salt = draw(st.integers(0, 999))
    epochs = []
    for _ in range(draw(st.integers(1, 4))):
        writes = draw(st.lists(st.integers(0, BLOCKS - 1),
                               min_size=1, max_size=15))
        epochs.append(writes)
    crash_epoch = draw(st.integers(0, len(epochs) - 1))
    crash_after_writes = draw(st.integers(0, 15))
    crash_delay = draw(st.integers(0, 300_000))
    return salt, epochs, crash_epoch, crash_after_writes, crash_delay


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_recovery_always_matches_a_committed_boundary(schedule):
    salt, epochs, crash_epoch, crash_after_writes, crash_delay = schedule
    system = make_direct()
    shadow = {}
    goldens = {-1: {}}
    crashed = False
    for epoch, writes in enumerate(epochs):
        for index, block in enumerate(writes):
            if epoch == crash_epoch and index == crash_after_writes:
                crashed = True
                break
            data = token(epoch, block, salt)
            write_block(system, block, data)
            shadow[block] = data
        if crashed:
            break
        run_until(system.engine,
                  lambda: system.ctl.epochs.phase is Phase.EXECUTING)
        assert not system.ctl._deferred_writes
        system.ctl.validate()
        system.ctl.force_epoch_end("prop")
        run_until(system.engine,
                  lambda e=epoch: system.ctl.epochs.active_epoch > e)
        goldens[epoch] = dict(shadow)
    settle(system.engine, crash_delay)
    system.ctl.crash()
    recovered = system.ctl.recover()
    assert recovered.epoch in goldens
    golden = goldens[recovered.epoch]
    for block in range(BLOCKS):
        expected = golden.get(block, bytes(64))
        assert recovered.visible_block(block) == expected, (
            f"block {block} mismatch after recovery to epoch "
            f"{recovered.epoch}")


@given(st.integers(0, 2 ** 32 - 1))
@settings(max_examples=30, deadline=None)
def test_random_mixed_workload_with_hot_pages_recovers(seed):
    """Denser variant: includes a hot page so the page-writeback and
    cooperation paths participate in the crash schedule."""
    rng = random.Random(seed)
    system = make_direct()
    per_page = system.config.blocks_per_page
    shadow = {}
    goldens = {-1: {}}
    num_epochs = rng.randrange(1, 4)
    for epoch in range(num_epochs):
        for _ in range(rng.randrange(3, 10)):
            block = rng.randrange(BLOCKS)
            data = token(epoch, block, seed % 1000)
            write_block(system, block, data)
            shadow[block] = data
        # Dirty a full hot page each epoch (promotion after epoch 0).
        first = 2 * per_page
        for offset in range(per_page):
            data = token(epoch, first + offset, seed % 1000)
            write_block(system, first + offset, data)
            shadow[first + offset] = data
        run_until(system.engine,
                  lambda: system.ctl.epochs.phase is Phase.EXECUTING)
        system.ctl.force_epoch_end("prop")
        run_until(system.engine,
                  lambda e=epoch: system.ctl.epochs.active_epoch > e)
        goldens[epoch] = dict(shadow)
    settle(system.engine, rng.randrange(500_000))
    system.ctl.crash()
    recovered = system.ctl.recover()
    assert recovered.epoch in goldens
    golden = goldens[recovered.epoch]
    for block in list(range(BLOCKS)) + list(range(2 * per_page,
                                                  3 * per_page)):
        expected = golden.get(block, bytes(64))
        assert recovered.visible_block(block) == expected
