"""Property-based crash-consistency: the reproduction's core invariant.

Hypothesis generates arbitrary schedules of writes, epoch boundaries,
simulated-time advances and one crash point; recovery must always
produce exactly the physical image of the last committed epoch
boundary.  This is the executable analogue of the paper's formal
protocol verification [66].
"""

import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.journaling import JournalingController
from repro.baselines.shadow import ShadowPagingController
from repro.config import small_test_config
from repro.core.epoch import Phase
from repro.mem.controller import MemoryController
from repro.sim.engine import Engine
from repro.sim.request import Origin
from repro.stats.collector import StatsCollector

from ..conftest import (MANUAL_EPOCHS, make_direct, pad, run_until,
                        settle, write_block)

BLOCKS = 40


def token(epoch, block, salt):
    return pad(f"s{salt}e{epoch}b{block}".encode())


@st.composite
def schedules(draw):
    salt = draw(st.integers(0, 999))
    epochs = []
    for _ in range(draw(st.integers(1, 4))):
        writes = draw(st.lists(st.integers(0, BLOCKS - 1),
                               min_size=1, max_size=15))
        epochs.append(writes)
    crash_epoch = draw(st.integers(0, len(epochs) - 1))
    crash_after_writes = draw(st.integers(0, 15))
    crash_delay = draw(st.integers(0, 300_000))
    return salt, epochs, crash_epoch, crash_after_writes, crash_delay


@given(schedules())
@settings(max_examples=50, deadline=None)
def test_recovery_always_matches_a_committed_boundary(schedule):
    salt, epochs, crash_epoch, crash_after_writes, crash_delay = schedule
    system = make_direct()
    shadow = {}
    goldens = {-1: {}}
    crashed = False
    for epoch, writes in enumerate(epochs):
        for index, block in enumerate(writes):
            if epoch == crash_epoch and index == crash_after_writes:
                crashed = True
                break
            data = token(epoch, block, salt)
            write_block(system, block, data)
            shadow[block] = data
        if crashed:
            break
        run_until(system.engine,
                  lambda: system.ctl.epochs.phase is Phase.EXECUTING)
        assert not system.ctl._deferred_writes
        system.ctl.validate()
        system.ctl.force_epoch_end("prop")
        run_until(system.engine,
                  lambda e=epoch: system.ctl.epochs.active_epoch > e)
        goldens[epoch] = dict(shadow)
    settle(system.engine, crash_delay)
    system.ctl.crash()
    recovered = system.ctl.recover()
    assert recovered.epoch in goldens
    golden = goldens[recovered.epoch]
    for block in range(BLOCKS):
        expected = golden.get(block, bytes(64))
        assert recovered.visible_block(block) == expected, (
            f"block {block} mismatch after recovery to epoch "
            f"{recovered.epoch}")


@given(st.integers(0, 2 ** 32 - 1))
@settings(max_examples=30, deadline=None)
def test_random_mixed_workload_with_hot_pages_recovers(seed):
    """Denser variant: includes a hot page so the page-writeback and
    cooperation paths participate in the crash schedule."""
    rng = random.Random(seed)
    system = make_direct()
    per_page = system.config.blocks_per_page
    shadow = {}
    goldens = {-1: {}}
    num_epochs = rng.randrange(1, 4)
    for epoch in range(num_epochs):
        for _ in range(rng.randrange(3, 10)):
            block = rng.randrange(BLOCKS)
            data = token(epoch, block, seed % 1000)
            write_block(system, block, data)
            shadow[block] = data
        # Dirty a full hot page each epoch (promotion after epoch 0).
        first = 2 * per_page
        for offset in range(per_page):
            data = token(epoch, first + offset, seed % 1000)
            write_block(system, first + offset, data)
            shadow[first + offset] = data
        run_until(system.engine,
                  lambda: system.ctl.epochs.phase is Phase.EXECUTING)
        system.ctl.force_epoch_end("prop")
        run_until(system.engine,
                  lambda e=epoch: system.ctl.epochs.active_epoch > e)
        goldens[epoch] = dict(shadow)
    settle(system.engine, rng.randrange(500_000))
    system.ctl.crash()
    recovered = system.ctl.recover()
    assert recovered.epoch in goldens
    golden = goldens[recovered.epoch]
    for block in list(range(BLOCKS)) + list(range(2 * per_page,
                                                  3 * per_page)):
        expected = golden.get(block, bytes(64))
        assert recovered.visible_block(block) == expected


# ---------------------------------------------------------------------
# Stop-the-world baselines: the same invariant, membership-style
# ---------------------------------------------------------------------

_BASELINES = {
    "journal": JournalingController,
    "shadow": ShadowPagingController,
}


def make_baseline(kind):
    config = small_test_config(epoch_cycles=MANUAL_EPOCHS)
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    controller = _BASELINES[kind](engine, config, memctrl, stats)
    controller.start()
    return SimpleNamespace(engine=engine, config=config, stats=stats,
                           memctrl=memctrl, ctl=controller)


@pytest.mark.parametrize("kind", sorted(_BASELINES))
@given(st.integers(0, 2 ** 32 - 1))
@settings(max_examples=25, deadline=None)
def test_baseline_recovery_matches_a_committed_boundary(kind, seed):
    """The baselines report no epoch number after a crash, so the
    oracle is membership: the recovered image must equal *some*
    committed boundary image.  Redo journaling commits early — once its
    log is durable the in-flight boundary is recoverable by replay —
    so for it the pending boundary image is also legal."""
    rng = random.Random(seed)
    system = make_baseline(kind)
    shadow = {}
    goldens = [{}]                   # committed images, oldest first
    pending = None
    num_epochs = rng.randrange(1, 4)
    crash_epoch = rng.randrange(num_epochs)
    crash_delay = rng.randrange(400_000)
    for epoch in range(num_epochs):
        for _ in range(rng.randrange(3, 12)):
            block = rng.randrange(BLOCKS)
            data = token(epoch, block, seed % 1000)
            system.ctl.write_block(block * 64, Origin.CPU, data=data)
            shadow[block] = data
        settle(system.engine)        # quiesce demand writes (no CPU
        run_until(system.engine,     # stall exists in direct driving)
                  lambda: not system.ctl._in_checkpoint)
        pending = dict(shadow)
        boundary = system.ctl.epoch
        system.ctl.force_epoch_end("prop")
        if epoch == crash_epoch:
            settle(system.engine, crash_delay)   # maybe mid-checkpoint
            break
        run_until(system.engine,
                  lambda b=boundary: system.ctl.epoch > b)
        goldens.append(dict(shadow))
    if system.ctl.epoch > boundary:  # committed before the crash hit
        goldens.append(dict(pending))
    system.ctl.crash()
    candidates = list(goldens)
    if kind == "journal" and pending is not None:
        candidates.append(pending)
    image = {block: system.ctl.recovered_block(block)
             for block in range(BLOCKS)}
    for candidate in candidates:
        if all(image[block] == candidate.get(block, bytes(64))
               for block in range(BLOCKS)):
            return
    raise AssertionError(
        f"{kind} recovery matches no committed boundary (seed {seed})")
