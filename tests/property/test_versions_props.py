"""Property test: every observed per-block protocol transition is legal.

Runs random write/epoch schedules against the controller while
monitoring each block's derived protocol state; any transition outside
the state machine of :mod:`repro.core.versions` fails the test.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.epoch import Phase
from repro.core.versions import classify_block_state, validate_transition

from ..conftest import make_direct, pad, run_until, settle, write_block

BLOCKS = 16


@given(st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, BLOCKS - 1)),
        st.tuples(st.just("epoch"), st.just(0)),
        st.tuples(st.just("run"), st.integers(1, 50_000)),
    ),
    min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_all_transitions_legal(script):
    system = make_direct()
    ctl = system.ctl
    states = {
        block: classify_block_state(None, 0, None) for block in range(BLOCKS)
    }

    def observe():
        for block in range(BLOCKS):
            # Blocks inside PTT pages leave the per-block machine.
            page = ctl.addresses.page_of_block(block)
            if ctl.ptt.lookup(page) is not None:
                continue
            state = classify_block_state(ctl.btt.lookup(block),
                                         ctl.epochs.active_epoch,
                                         ctl.epochs.ckpt_epoch)
            validate_transition(states[block], state)
            states[block] = state

    for op, value in script:
        if op == "write":
            write_block(system, value, pad(b"w"))
        elif op == "epoch":
            if ctl.epochs.phase is Phase.EXECUTING:
                ctl.force_epoch_end("prop")
        else:
            settle(system.engine, value)
        observe()
        ctl.validate()
    run_until(system.engine,
              lambda: ctl.epochs.phase is Phase.EXECUTING)
    observe()
    ctl.validate()
