"""Tests for the generic sweep helpers."""

from repro.config import small_test_config
from repro.harness.sweeps import sweep_config, sweep_systems
from repro.workloads.micro import random_trace


def factory():
    return random_trace(64 * 1024, 300, seed=2)


def test_sweep_config_varies_field():
    results = sweep_config(
        "btt_entries", (64, 256), factory,
        base_config=small_test_config(),
        metric=lambda stats: stats.nvm_write_blocks)
    assert set(results) == {64, 256}
    assert all(isinstance(v, int) for v in results.values())


def test_sweep_config_default_metric_is_stats():
    results = sweep_config("epoch_cycles", (30_000,), factory,
                           base_config=small_test_config())
    stats = results[30_000]
    assert stats.instructions > 0


def test_sweep_systems():
    results = sweep_systems(("ideal_dram", "thynvm"), factory,
                            config=small_test_config(),
                            metric=lambda stats: stats.cycles)
    assert results["thynvm"] >= results["ideal_dram"]
