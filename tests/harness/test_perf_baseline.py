"""Baseline selection for ``repro perf --check``.

A throughput comparison is only meaningful against an entry that
measured the same thing: same mode, same trace length, same
(workload, system) matrix.  These tests pin the selection rules and
the graceful "no baseline" degradation for empty or malformed
trajectories.
"""

from __future__ import annotations

from repro.perf import _matrix_shape, find_baseline, load_trajectory


def _entry(mode: str, ops: int, cells, rate: int = 1000, label: str = "e"):
    return {
        "label": label,
        "mode": mode,
        "ops": ops,
        "cells": [{"workload": w, "system": s} for w, s in cells],
        "totals": {"events_per_sec": rate},
    }


FULL = [(w, s) for w in ("random", "streaming") for s in ("shadow", "thynvm")]
PARTIAL = [("random", "shadow")]


def test_empty_trajectory_yields_no_baseline():
    assert find_baseline({"entries": []}, mode="full") is None
    assert find_baseline({}, mode="full") is None


def test_missing_file_yields_no_baseline(tmp_path):
    trajectory = load_trajectory(tmp_path / "missing.json")
    assert find_baseline(trajectory, mode="quick") is None


def test_quick_never_compares_against_full():
    trajectory = {"entries": [_entry("full", 12000, FULL, label="full-only")]}
    assert find_baseline(trajectory, mode="quick") is None


def test_full_never_compares_against_quick():
    trajectory = {"entries": [_entry("quick", 3000, FULL, label="q")]}
    assert find_baseline(trajectory, mode="full") is None


def test_matching_mode_picks_most_recent():
    trajectory = {"entries": [
        _entry("quick", 3000, FULL, rate=10, label="old-quick"),
        _entry("full", 12000, FULL, rate=20, label="full"),
        _entry("quick", 3000, FULL, rate=30, label="new-quick"),
    ]}
    chosen = find_baseline(trajectory, mode="quick")
    assert chosen["label"] == "new-quick"


def test_ops_must_match_when_provided():
    trajectory = {"entries": [
        _entry("full", 12000, FULL, label="twelve-k"),
        _entry("full", 6000, FULL, label="six-k"),
    ]}
    assert find_baseline(trajectory, mode="full", ops=12000)["label"] == \
        "twelve-k"
    assert find_baseline(trajectory, mode="full", ops=3000) is None


def test_matrix_shape_must_match_when_provided():
    full = _entry("full", 12000, FULL, label="full-matrix")
    partial = _entry("full", 12000, PARTIAL, label="partial-matrix")
    trajectory = {"entries": [full, partial]}
    shape = _matrix_shape(full)
    assert find_baseline(trajectory, mode="full", ops=12000,
                         shape=shape)["label"] == "full-matrix"
    assert find_baseline(
        trajectory, mode="full", ops=12000,
        shape=_matrix_shape(partial))["label"] == "partial-matrix"


def test_malformed_entries_are_skipped():
    trajectory = {"entries": [
        "not-a-dict",
        {"mode": "full", "ops": 12000},                 # no totals
        {"mode": "full", "ops": 12000, "totals": {}},   # no rate
        _entry("full", 12000, FULL, label="good"),
    ]}
    assert find_baseline(trajectory, mode="full")["label"] == "good"
    assert _matrix_shape({"cells": "nope"}) is None
    assert _matrix_shape({"cells": [{"workload": "w"}]}) is None
