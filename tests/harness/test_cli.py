"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, make_parser


def test_run_json_output(capsys):
    assert main(["run", "--system", "ideal_dram", "--workload", "random",
                 "--ops", "200", "--footprint", "65536", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["instructions"] > 0
    assert "nvm_write_breakdown" in payload


def test_run_table_output(capsys):
    assert main(["run", "--system", "thynvm", "--workload", "streaming",
                 "--ops", "200", "--footprint", "65536"]) == 0
    out = capsys.readouterr().out
    assert "thynvm / streaming" in out
    assert "cycles" in out


def test_run_kv_workload(capsys):
    assert main(["run", "--system", "journal", "--workload", "kv-hash",
                 "--ops", "60", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["transactions"] == 60


def test_run_spec_workload(capsys):
    assert main(["run", "--system", "ideal_nvm", "--workload", "spec:lbm",
                 "--ops", "300", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["instructions"] > 300


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "bogus", "--ops", "10"])


def test_unknown_spec_model_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "spec:nope", "--ops", "10"])


def test_trace_record_and_replay(tmp_path, capsys):
    path = tmp_path / "cli.trace"
    assert main(["trace", "record", "--workload", "random", "--ops", "80",
                 "--footprint", "65536", "-o", str(path)]) == 0
    assert path.exists()
    capsys.readouterr()
    assert main(["trace", "run", str(path), "--system", "ideal_dram"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["instructions"] > 0


def test_epoch_override(capsys):
    assert main(["run", "--system", "thynvm", "--workload", "random",
                 "--ops", "300", "--footprint", "65536",
                 "--epoch-us", "10", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["epochs"] >= 2


def test_parser_help_lists_subcommands():
    parser = make_parser()
    assert {a.dest for a in parser._subparsers._actions[-1].choices[
        "run"]._actions if a.dest != "help"}  # parser is well-formed
