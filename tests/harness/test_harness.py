"""Unit tests for the system factory, runner and table helpers."""

import pytest

from repro.config import small_test_config
from repro.cpu.trace import TraceBuilder
from repro.errors import ConfigError
from repro.harness.runner import run_workload
from repro.harness.systems import SYSTEM_NAMES, build_system
from repro.harness.tables import format_table, geometric_mean, normalize


def small_trace():
    builder = TraceBuilder()
    for i in range(50):
        builder.work(4).write(i * 64 % (64 * 1024), 64).txn()
    return builder.build()


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_every_system_runs_a_trace(name):
    result = run_workload(name, small_trace(), small_test_config())
    assert result.finished
    assert result.stats.instructions > 0
    assert result.cycles > 0
    assert result.stats.transactions == 50


def test_unknown_system_rejected():
    with pytest.raises(ConfigError):
        build_system("nonsense", small_test_config())


def test_runs_are_deterministic():
    a = run_workload("thynvm", small_trace(), small_test_config())
    b = run_workload("thynvm", small_trace(), small_test_config())
    assert a.cycles == b.cycles
    assert a.stats.nvm_write_blocks == b.stats.nvm_write_blocks


def test_consistency_systems_cost_more_than_ideal():
    config = small_test_config()
    ideal = run_workload("ideal_dram", small_trace(), config)
    thynvm = run_workload("thynvm", small_trace(), config)
    assert thynvm.cycles >= ideal.cycles
    assert thynvm.stats.epochs_completed >= 1


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["bbb", 20]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_normalize():
    values = normalize({"a": 2.0, "b": 4.0}, "a")
    assert values == {"a": 1.0, "b": 2.0}
    with pytest.raises(ZeroDivisionError):
        normalize({"a": 0.0}, "a")


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([3]) == pytest.approx(3.0)
