"""Unit tests for the system factory, runner and table helpers."""

import pytest

from repro.config import small_test_config
from repro.cpu.trace import TraceBuilder
from repro.errors import ConfigError, SimulationError
from repro.harness.runner import execute, run_workload
from repro.harness.systems import SYSTEM_NAMES, build_system
from repro.harness.tables import format_table, geometric_mean, normalize


def small_trace():
    builder = TraceBuilder()
    for i in range(50):
        builder.work(4).write(i * 64 % (64 * 1024), 64).txn()
    return builder.build()


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_every_system_runs_a_trace(name):
    result = run_workload(name, small_trace(), small_test_config())
    assert result.finished
    assert result.stats.instructions > 0
    assert result.cycles > 0
    assert result.stats.transactions == 50


def test_unknown_system_rejected():
    with pytest.raises(ConfigError):
        build_system("nonsense", small_test_config())


def test_execute_with_no_traces_is_a_valid_run():
    """A zero-work run must drain and finish, not report a wedged engine."""
    system = build_system("thynvm", small_test_config())
    result = execute(system, iter([]), traces=[])
    assert result.finished
    assert result.stats.instructions == 0


def test_execute_with_all_empty_traces_finishes():
    system = build_system("ideal_dram", small_test_config())
    result = execute(system, iter([]), traces=[iter([])])
    assert result.finished
    assert result.stats.instructions == 0


def test_execute_rejects_more_traces_than_cores():
    system = build_system("ideal_dram", small_test_config())
    with pytest.raises(SimulationError):
        execute(system, iter([]), traces=[small_trace(), small_trace()])


def test_wedged_run_reports_every_core():
    """The wedge diagnostic must name each core's stall state."""
    system = build_system("ideal_dram", small_test_config(num_cores=2))
    system.memsys.drain = lambda on_done: None   # swallow the drain
    with pytest.raises(SimulationError) as excinfo:
        execute(system, iter([]), traces=[small_trace(), small_trace()])
    message = str(excinfo.value)
    assert "core0" in message and "core1" in message


def test_runs_are_deterministic():
    a = run_workload("thynvm", small_trace(), small_test_config())
    b = run_workload("thynvm", small_trace(), small_test_config())
    assert a.cycles == b.cycles
    assert a.stats.nvm_write_blocks == b.stats.nvm_write_blocks


def test_consistency_systems_cost_more_than_ideal():
    config = small_test_config()
    ideal = run_workload("ideal_dram", small_trace(), config)
    thynvm = run_workload("thynvm", small_trace(), config)
    assert thynvm.cycles >= ideal.cycles
    assert thynvm.stats.epochs_completed >= 1


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["bbb", 20]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_normalize():
    values = normalize({"a": 2.0, "b": 4.0}, "a")
    assert values == {"a": 1.0, "b": 2.0}
    with pytest.raises(ZeroDivisionError):
        normalize({"a": 0.0}, "a")


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([3]) == pytest.approx(3.0)
