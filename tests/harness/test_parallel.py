"""Tests for the parallel, cached point runner (docs/HARNESS.md)."""

import pytest

import repro.harness.parallel as parallel
from repro.config import small_test_config
from repro.errors import ConfigError
from repro.harness.parallel import (RunPoint, cache_key, code_version,
                                    run_points, stats_by_point)
from repro.harness.sweeps import sweep_config
from repro.stats.summary import stats_to_dict
from repro.workloads.micro import random_trace
from repro.workloads.tracespec import micro_spec

CONFIG = small_test_config()


def points():
    trace = micro_spec("random", 64 * 1024, 300, seed=1)
    return [RunPoint(system=system, trace=trace, config=CONFIG,
                     label=system)
            for system in ("ideal_dram", "journal", "thynvm")]


def snapshots(results):
    return [stats_to_dict(result.stats) for result in results]


def test_serial_matches_direct_run_workload():
    [result] = run_points(points()[:1])
    direct = parallel.run_workload("ideal_dram",
                                   random_trace(64 * 1024, 300, seed=1),
                                   CONFIG)
    assert stats_to_dict(result.stats) == stats_to_dict(direct.stats)
    assert not result.cached
    assert result.wall_seconds > 0


def test_parallel_results_identical_to_serial():
    serial = run_points(points(), jobs=1)
    fanned = run_points(points(), jobs=2)
    assert snapshots(serial) == snapshots(fanned)
    # Merge order is the declared order, never completion order.
    assert [r.point.label for r in fanned] == ["ideal_dram", "journal",
                                               "thynvm"]


def test_cache_hits_skip_simulation(tmp_path, monkeypatch):
    cold = run_points(points(), cache_dir=tmp_path)
    assert all(not result.cached for result in cold)
    assert sorted(tmp_path.glob("*.json"))

    # A warm run must never reach the worker: make it explode if it does.
    def boom(payload):
        raise AssertionError("cache hit must skip simulation")

    monkeypatch.setattr(parallel, "_simulate", boom)
    warm = run_points(points(), cache_dir=tmp_path)
    assert all(result.cached for result in warm)
    assert snapshots(warm) == snapshots(cold)


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    run_points(points()[:1], cache_dir=tmp_path)
    for path in tmp_path.glob("*.json"):
        path.write_text("{not json")
    rerun = run_points(points()[:1], cache_dir=tmp_path)
    assert not rerun[0].cached


def test_cache_key_depends_on_every_input():
    [a, b, c] = points()
    base = cache_key(a, version="v")
    assert base == cache_key(a, version="v")                 # stable
    assert base != cache_key(b, version="v")                 # system
    assert base != cache_key(a, version="w")                 # code version
    other_config = RunPoint(system=a.system, trace=a.trace,
                            config=CONFIG.with_overrides(btt_entries=128))
    assert base != cache_key(other_config, version="v")      # config
    other_trace = RunPoint(system=a.system, config=a.config,
                           trace=micro_spec("random", 64 * 1024, 300,
                                            seed=9))
    assert base != cache_key(other_trace, version="v")       # workload


def test_code_version_is_memoized_hex():
    version = code_version()
    assert version == code_version()
    int(version, 16)
    assert len(version) == 64


def test_progress_events_fire_in_declared_order():
    events = []
    run_points(points(), progress=events.append)
    assert [event.index for event in events] == [0, 1, 2]
    assert all(event.total == 3 for event in events)
    assert [event.point.label for event in events] == ["ideal_dram",
                                                       "journal", "thynvm"]


def test_stats_by_point_preserves_order():
    results = run_points(points())
    assert stats_by_point(results) == [r.stats for r in results]


def test_sweep_with_spec_matches_factory():
    spec = micro_spec("random", 64 * 1024, 300, seed=2)
    via_spec = sweep_config("btt_entries", (64, 256), spec,
                            base_config=CONFIG,
                            metric=lambda stats: stats.nvm_write_blocks)
    via_factory = sweep_config("btt_entries", (64, 256),
                               lambda: random_trace(64 * 1024, 300, seed=2),
                               base_config=CONFIG,
                               metric=lambda stats: stats.nvm_write_blocks)
    assert via_spec == via_factory


def test_sweep_factory_cannot_fan_out():
    factory = lambda: random_trace(64 * 1024, 100, seed=1)
    with pytest.raises(ConfigError):
        sweep_config("btt_entries", (64,), factory, base_config=CONFIG,
                     jobs=2)
    with pytest.raises(ConfigError):
        sweep_config("btt_entries", (64,), factory, base_config=CONFIG,
                     cache_dir=".somewhere")
