"""Unit tests for the three-level hierarchy over a scripted port."""

from typing import List

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.config import small_test_config
from repro.sim.engine import Engine
from repro.sim.request import MemoryRequest, Origin
from repro.stats.collector import StatsCollector


class ScriptedPort:
    """Records port traffic; services everything after a fixed delay."""

    def __init__(self, engine, latency=100):
        self.engine = engine
        self.latency = latency
        self.reads: List[int] = []
        self.writes: List[int] = []

    def read_block(self, addr, origin, callback):
        self.reads.append(addr)
        request = MemoryRequest(addr, False, origin, callback=callback)
        self.engine.schedule(self.latency,
                             lambda: request.complete(self.engine.now))

    def write_block(self, addr, origin, data=None, callback=None,
                    on_accept=None):
        self.writes.append(addr)
        if on_accept is not None:
            on_accept()
        request = MemoryRequest(addr, True, origin, data=data,
                                callback=callback)
        self.engine.schedule(self.latency,
                             lambda: request.complete(self.engine.now))


@pytest.fixture
def setup():
    config = small_test_config()
    engine = Engine()
    stats = StatsCollector()
    port = ScriptedPort(engine)
    hierarchy = CacheHierarchy(engine, config, port, stats)
    return engine, hierarchy, port, stats, config


def _access(engine, hierarchy, addr, is_write):
    done = []
    hierarchy.access(addr, is_write, lambda: done.append(engine.now))
    engine.run_until_idle()
    return done[0]


def test_miss_goes_to_memory_then_hits(setup):
    engine, hierarchy, port, stats, config = setup
    t_miss = _access(engine, hierarchy, 0, False)
    assert port.reads == [0]
    t0 = engine.now
    t_hit = _access(engine, hierarchy, 0, False) - t0
    assert t_hit == config.l1.hit_latency
    assert t_hit < t_miss
    assert stats.cache_hits.get("L1") == 1
    assert stats.cache_misses.get("LLC") == 1


def test_store_marks_dirty(setup):
    engine, hierarchy, _port, _stats, _config = setup
    _access(engine, hierarchy, 0, True)
    assert hierarchy.dirty_block_count() == 1


def test_load_does_not_dirty(setup):
    engine, hierarchy, _port, _stats, _config = setup
    _access(engine, hierarchy, 0, False)
    assert hierarchy.dirty_block_count() == 0


def test_flush_writes_back_dirty_blocks_once(setup):
    engine, hierarchy, port, _stats, _config = setup
    for i in range(4):
        _access(engine, hierarchy, i * 64, True)
    results = {}
    hierarchy.flush_dirty(Origin.FLUSH,
                          on_accepted=lambda n: results.update(n=n))
    engine.run_until_idle()
    assert results["n"] == 4
    assert sorted(port.writes) == [0, 64, 128, 192]
    assert hierarchy.dirty_block_count() == 0
    # Blocks stay resident: re-access is an L1 hit.
    t0 = engine.now
    assert _access(engine, hierarchy, 0, False) - t0 == 4


def test_flush_empty_is_immediate(setup):
    _engine, hierarchy, _port, _stats, _config = setup
    results = {}
    hierarchy.flush_dirty(Origin.FLUSH,
                          on_accepted=lambda n: results.update(n=n),
                          on_initiated=lambda n: results.update(i=n))
    assert results == {"n": 0, "i": 0}


def test_flush_initiation_precedes_acceptance_timing(setup):
    engine, hierarchy, _port, _stats, _config = setup
    for i in range(8):
        _access(engine, hierarchy, i * 64, True)
    times = {}
    hierarchy.flush_dirty(
        Origin.FLUSH,
        on_accepted=lambda n: times.setdefault("accepted", engine.now),
        on_initiated=lambda n: times.setdefault("initiated", engine.now))
    engine.run_until_idle()
    assert "initiated" in times and "accepted" in times


def test_dirty_eviction_reaches_memory(setup):
    engine, hierarchy, port, _stats, config = setup
    # Write enough distinct blocks to overflow every level of the tiny
    # test hierarchy; dirty victims must eventually reach the port.
    total_blocks = (config.l1.size_bytes + config.l2.size_bytes
                    + config.l3.size_bytes) // 64 + 64
    for i in range(total_blocks):
        _access(engine, hierarchy, i * 64, True)
    assert port.writes, "expected dirty L3 victims to be written back"


def test_dirty_pressure_callback_fires(setup):
    engine, hierarchy, _port, _stats, _config = setup
    fired = []
    hierarchy.set_dirty_pressure(3, lambda: fired.append(True))
    for i in range(5):
        _access(engine, hierarchy, i * 64, True)
    assert fired


def test_invalidate_all(setup):
    engine, hierarchy, _port, _stats, _config = setup
    _access(engine, hierarchy, 0, True)
    hierarchy.invalidate_all()
    assert hierarchy.dirty_block_count() == 0
    # Next access misses again.
    misses_before = hierarchy.l1.misses
    _access(engine, hierarchy, 0, False)
    assert hierarchy.l1.misses > misses_before
