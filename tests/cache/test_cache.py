"""Unit tests for one cache level."""

import pytest

from repro.cache.cache import Cache
from repro.config import CacheConfig


@pytest.fixture
def cache():
    # 4 sets x 2 ways x 64B blocks = 512B.
    return Cache("t", CacheConfig(512, 2, 64, 1))


def addr_for(cache, set_index, tag):
    return ((tag * cache._num_sets) + set_index) << 6


def test_miss_then_hit(cache):
    assert not cache.lookup(0)
    cache.insert(0, dirty=False)
    assert cache.lookup(0)
    assert cache.hits == 1
    assert cache.misses == 1


def test_eviction_is_lru(cache):
    a = addr_for(cache, 0, 0)
    b = addr_for(cache, 0, 1)
    c = addr_for(cache, 0, 2)
    cache.insert(a, False)
    cache.insert(b, False)
    cache.lookup(a)           # a becomes MRU
    victim = cache.insert(c, False)
    assert victim == (b, False)


def test_dirty_victim_reported(cache):
    a = addr_for(cache, 1, 0)
    b = addr_for(cache, 1, 1)
    c = addr_for(cache, 1, 2)
    cache.insert(a, True)
    cache.insert(b, False)
    victim = cache.insert(c, False)
    assert victim == (a, True)


def test_reinsert_merges_dirty_bit(cache):
    cache.insert(0, dirty=False)
    cache.insert(0, dirty=True)
    assert cache.dirty_block_count() == 1
    cache.insert(0, dirty=False)    # must not clear dirtiness
    assert cache.dirty_block_count() == 1


def test_mark_dirty(cache):
    cache.insert(0, dirty=False)
    assert cache.dirty_block_count() == 0
    cache.mark_dirty(0)
    assert cache.dirty_block_count() == 1
    cache.mark_dirty(0)             # idempotent
    assert cache.dirty_block_count() == 1


def test_mark_dirty_on_absent_block_is_noop(cache):
    cache.mark_dirty(0)
    assert cache.dirty_block_count() == 0


def test_clean_dirty_blocks_keeps_residency(cache):
    cache.insert(0, dirty=True)
    cache.insert(addr_for(cache, 1, 0), dirty=True)
    cleaned = cache.clean_dirty_blocks()
    assert sorted(cleaned) == sorted([0, addr_for(cache, 1, 0)])
    assert cache.dirty_block_count() == 0
    assert cache.lookup(0)          # still resident (CLWB semantics)


def test_invalidate(cache):
    cache.insert(0, dirty=True)
    assert cache.invalidate(0) is True   # was dirty
    assert not cache.lookup(0)
    assert cache.dirty_block_count() == 0
    assert cache.invalidate(0) is False


def test_invalidate_all(cache):
    for i in range(8):
        cache.insert(i * 64, dirty=True)
    cache.invalidate_all()
    assert cache.resident_blocks == 0
    assert cache.dirty_block_count() == 0


def test_dirty_counter_tracks_evictions(cache):
    a = addr_for(cache, 0, 0)
    b = addr_for(cache, 0, 1)
    c = addr_for(cache, 0, 2)
    cache.insert(a, True)
    cache.insert(b, True)
    assert cache.dirty_block_count() == 2
    cache.insert(c, False)          # evicts dirty a
    assert cache.dirty_block_count() == 1
