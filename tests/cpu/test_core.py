"""Unit tests for the in-order core over a scripted memory system."""

import pytest

from repro.config import small_test_config
from repro.cpu.core import Core
from repro.cpu.trace import read, txn, work, write
from repro.cache.hierarchy import CacheHierarchy
from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.request import MemoryRequest
from repro.stats.collector import StatsCollector


class InstantPort:
    """Memory system that services everything immediately."""

    def __init__(self, engine):
        self.engine = engine

    def read_block(self, addr, origin, callback):
        request = MemoryRequest(addr, False, origin, callback=callback)
        self.engine.schedule(50, lambda: request.complete(self.engine.now))

    def write_block(self, addr, origin, data=None, callback=None,
                    on_accept=None):
        if on_accept is not None:
            on_accept()
        request = MemoryRequest(addr, True, origin, data=data,
                                callback=callback)
        self.engine.schedule(50, lambda: request.complete(self.engine.now))


@pytest.fixture
def setup():
    config = small_test_config()
    engine = Engine()
    stats = StatsCollector()
    hierarchy = CacheHierarchy(engine, config, InstantPort(engine), stats)
    core = Core(engine, config, hierarchy, stats)
    return engine, core, stats


def run(engine, core, ops):
    finished = []
    core.run_trace(iter(ops), lambda: finished.append(engine.now))
    engine.run_until_idle()
    assert finished, "trace did not finish"
    return finished[0]


def test_work_advances_time_one_cycle_per_instruction(setup):
    engine, core, stats = setup
    end = run(engine, core, [work(100)])
    assert end >= 100
    assert stats.instructions == 100


def test_memory_ops_count_as_instructions(setup):
    engine, core, stats = setup
    run(engine, core, [write(0, 64), read(0, 64)])
    assert stats.instructions == 2


def test_txn_counts_transactions(setup):
    engine, core, stats = setup
    run(engine, core, [work(1), txn(), work(1), txn()])
    assert stats.transactions == 2


def test_multiblock_access_splits(setup):
    engine, core, stats = setup
    run(engine, core, [read(0, 256)])   # 4 blocks
    assert stats.cache_misses.get("LLC") == 4


def test_in_order_blocking(setup):
    engine, core, _stats = setup
    # A miss (50-cycle memory) must delay subsequent work.
    t_mem = run(engine, core, [read(0, 64), work(1)])
    assert t_mem > 50


def test_stall_and_resume(setup):
    engine, core, stats = setup
    finished = []
    core.run_trace(iter([work(10), work(10)]),
                   lambda: finished.append(engine.now))
    stalled = []
    core.stall_at_next_boundary("flush", lambda: stalled.append(engine.now))
    engine.run_until_idle()
    assert stalled and not finished      # frozen mid-trace
    core.resume()
    engine.run_until_idle()
    assert finished
    assert stats.stall_cycles.get("flush") == 0  # resumed immediately


def test_stall_accounts_cycles(setup):
    engine, core, stats = setup
    core.run_trace(iter([work(1000)]), lambda: None)
    core.stall_at_next_boundary("checkpoint", lambda: None)
    engine.run_until_idle()
    assert core.stalled
    engine.schedule(500, core.resume)
    engine.run_until_idle()
    assert stats.stall_cycles.get("checkpoint") == 500


def test_double_stall_rejected(setup):
    engine, core, _stats = setup
    core.run_trace(iter([work(10)]), lambda: None)
    core.stall_at_next_boundary("a", lambda: None)
    with pytest.raises(SimulationError):
        core.stall_at_next_boundary("b", lambda: None)


def test_cancel_pending_stall(setup):
    engine, core, _stats = setup
    finished = []
    core.run_trace(iter([read(0, 64)]), lambda: finished.append(1))
    engine.run(max_events=1)             # mid-instruction
    core.stall_at_next_boundary("x", lambda: None)
    if not core.stalled:
        assert core.stall_pending
        core.cancel_stall_request()
        engine.run_until_idle()
        assert finished
    else:
        core.resume()
        engine.run_until_idle()
        assert finished


def test_change_stall_reason_splits_accounting(setup):
    engine, core, stats = setup
    core.run_trace(iter([work(10)]), lambda: None)
    core.stall_at_next_boundary("flush", lambda: None)
    engine.run_until_idle()
    start = engine.now
    engine.schedule(100, lambda: core.change_stall_reason("checkpoint"))
    engine.run_until_idle()
    engine.schedule(300, core.resume)
    engine.run_until_idle()
    assert stats.stall_cycles.get("flush") == 100
    assert stats.stall_cycles.get("checkpoint") == 300


def test_kill_stops_execution(setup):
    engine, core, stats = setup
    core.run_trace(iter([work(10 ** 6)]), lambda: None)
    engine.run(max_events=1)
    core.kill()
    engine.run_until_idle()
    assert stats.instructions < 10 ** 6 or not core.finished


def test_state_version_advances(setup):
    engine, core, _stats = setup
    before = core.state.version
    run(engine, core, [work(5), write(0, 8)])
    assert core.state.version > before
    snap = core.state.capture()
    core.state.advance()
    assert core.state.version == snap.version + 1
    core.state.restore_from(snap)
    assert core.state.version == snap.version
