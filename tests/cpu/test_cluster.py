"""Tests for multi-core execution (ExecutionCluster)."""

import pytest

from repro.config import small_test_config
from repro.cpu.trace import TraceBuilder
from repro.harness.runner import execute
from repro.harness.systems import build_system
from repro.workloads.micro import random_trace, streaming_trace


def small_traces(n, ops=400, seed0=0):
    return [random_trace(64 * 1024, ops, seed=seed0 + i) for i in range(n)]


def test_multicore_system_builds_shared_l3():
    config = small_test_config(num_cores=4)
    system = build_system("thynvm", config)
    assert len(system.cores) == 4
    assert system.cluster is not None
    l3s = {id(h.l3) for h in system.cluster.hierarchies}
    assert len(l3s) == 1, "L3 must be shared"
    l1s = {id(h.l1) for h in system.cluster.hierarchies}
    assert len(l1s) == 4, "L1s must be private"


def test_all_cores_execute_their_traces():
    config = small_test_config(num_cores=3, epoch_cycles=50_000)
    system = build_system("thynvm", config)
    result = execute(system, None, traces=small_traces(3))
    # 400 ops x (8 work + 1 mem) x 3 cores.
    assert result.stats.instructions == 3 * 400 * 9
    assert result.stats.epochs_completed >= 1


def test_epoch_boundary_quiesces_every_core():
    config = small_test_config(num_cores=2, epoch_cycles=40_000)
    system = build_system("thynvm", config)
    result = execute(system, None, traces=small_traces(2))
    assert result.finished
    # Both cores accumulated flush-stall cycles (they were frozen at
    # boundaries together).
    assert result.stats.stall_cycles.get("flush") > 0


def test_multicore_crash_recovery_is_consistent():
    config = small_test_config(num_cores=2, epoch_cycles=40_000)
    system = build_system("thynvm", config)
    system.memsys.start()
    for core, trace in zip(system.cores, small_traces(2, ops=1500)):
        core.run_trace(iter(trace), lambda: None)
    system.engine.run(until=400_000)
    system.memsys.crash()
    recovered = system.memsys.recover()
    assert recovered.epoch >= 0


def test_fewer_traces_than_cores_is_allowed():
    config = small_test_config(num_cores=4)
    system = build_system("ideal_dram", config)
    result = execute(system, None, traces=small_traces(2))
    assert result.finished


def test_multicore_throughput_scales():
    """4 cores finish 4x the work in (much) less than 4x the time."""
    config1 = small_test_config(num_cores=1, epoch_cycles=100_000)
    system1 = build_system("thynvm", config1)
    t1 = execute(system1, streaming_trace(64 * 1024, 800)).cycles

    config4 = small_test_config(num_cores=4, epoch_cycles=100_000)
    system4 = build_system("thynvm", config4)
    traces = [streaming_trace(64 * 1024, 800, seed=i) for i in range(4)]
    t4 = execute(system4, None, traces=traces).cycles
    assert t4 < 3 * t1


def test_num_cores_validation():
    with pytest.raises(Exception):
        small_test_config(num_cores=0)
