"""Unit tests for the trace format."""

import pytest

from repro.cpu.trace import OpKind, TraceBuilder, read, txn, work, write
from repro.errors import WorkloadError


def test_op_constructors():
    assert work(5).kind is OpKind.WORK
    assert work(5).size == 5
    assert read(0x40, 8) == (OpKind.READ, 0x40, 8)
    assert write(0x80, 64).kind is OpKind.WRITE
    assert txn().kind is OpKind.TXN


def test_invalid_ops_rejected():
    with pytest.raises(WorkloadError):
        work(0)
    with pytest.raises(WorkloadError):
        read(0, 0)
    with pytest.raises(WorkloadError):
        write(0, -1)


def test_builder_round_trip():
    trace = (TraceBuilder()
             .work(3)
             .write(0, 64)
             .read(0, 64)
             .txn()
             .build())
    assert [op.kind for op in trace] == [
        OpKind.WORK, OpKind.WRITE, OpKind.READ, OpKind.TXN]


def test_builder_extend_and_len():
    builder = TraceBuilder().work(1)
    builder.extend([read(0), write(8)])
    assert len(builder) == 3
    assert list(builder)[1].kind is OpKind.READ
