"""Unit tests for configuration validation and unit conversions."""

import pytest

from repro.config import CacheConfig, SystemConfig, small_test_config
from repro.errors import ConfigError
from repro.units import (bytes_per_second, cycles_to_ns, cycles_to_seconds,
                         ms_to_cycles, ns_to_cycles, us_to_cycles)


def test_default_config_matches_table2():
    config = SystemConfig()
    assert config.block_bytes == 64
    assert config.page_bytes == 4096
    assert config.blocks_per_page == 64
    assert config.btt_entries == 2048
    assert config.ptt_entries == 4096
    assert config.promote_threshold == 22
    assert config.demote_threshold == 16
    assert 30_000 < config.metadata_bytes < 45_000   # ~37 KB


def test_derived_geometry():
    config = small_test_config()
    assert config.physical_blocks == config.physical_bytes // 64
    assert config.physical_pages == config.physical_bytes // 4096
    assert config.dram_pages == config.dram_bytes // 4096


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(block_bytes=48)
    with pytest.raises(ConfigError):
        SystemConfig(page_bytes=4000)
    with pytest.raises(ConfigError):
        SystemConfig(dram_bytes=64 * 1024 * 1024)   # > physical
    with pytest.raises(ConfigError):
        SystemConfig(epoch_cycles=0)
    with pytest.raises(ConfigError):
        SystemConfig(promote_threshold=10, demote_threshold=20)


def test_ptt_must_cover_dram():
    with pytest.raises(ConfigError):
        SystemConfig(ptt_entries=16)    # < dram pages


def test_cache_config_validation():
    CacheConfig(4096, 8, 64, 1)
    with pytest.raises(ConfigError):
        CacheConfig(4096, 7, 64, 1)     # not divisible


def test_with_overrides_returns_new_config():
    base = SystemConfig()
    other = base.with_overrides(btt_entries=256)
    assert other.btt_entries == 256
    assert base.btt_entries == 2048


def test_describe_mentions_key_parameters():
    text = " ".join(SystemConfig().describe().values())
    assert "3 GHz" in text
    assert "2048/4096" in text


def test_unit_conversions():
    assert ns_to_cycles(40) == 120
    assert ns_to_cycles(368) == 1104
    assert us_to_cycles(1) == 3000
    assert ms_to_cycles(10) == 30_000_000
    assert cycles_to_ns(120) == 40
    assert cycles_to_seconds(3_000_000_000) == 1.0
    assert bytes_per_second(1000, 3_000_000_000) == 1000.0
    assert bytes_per_second(1000, 0) == 0.0
