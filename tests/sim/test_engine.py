"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(30, lambda: order.append("c"))
    engine.schedule(10, lambda: order.append("a"))
    engine.schedule(20, lambda: order.append("b"))
    engine.run_until_idle()
    assert order == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_fire_in_schedule_order():
    engine = Engine()
    order = []
    for tag in range(5):
        engine.schedule(7, lambda tag=tag: order.append(tag))
    engine.run_until_idle()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_at_boundary():
    engine = Engine()
    fired = []
    engine.schedule(5, lambda: fired.append(5))
    engine.schedule(15, lambda: fired.append(15))
    engine.run(until=10)
    assert fired == [5]
    assert engine.now == 10
    engine.run_until_idle()
    assert fired == [5, 15]


def test_events_can_schedule_more_events():
    engine = Engine()
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 5:
            engine.schedule(1, lambda: chain(depth + 1))

    engine.schedule(0, lambda: chain(0))
    engine.run_until_idle()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert engine.now == 5


def test_cancelled_events_do_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10, lambda: fired.append("cancelled"))
    engine.schedule(5, lambda: fired.append("kept"))
    event.cancel()
    engine.run_until_idle()
    assert fired == ["kept"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run_until_idle()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_run_until_advances_time_with_no_events():
    engine = Engine()
    engine.run(until=1000)
    assert engine.now == 1000


def test_max_events_cap():
    engine = Engine()

    def forever():
        engine.schedule(1, forever)

    engine.schedule(0, forever)
    with pytest.raises(SimulationError):
        engine.run_until_idle(max_events=100)


@pytest.mark.parametrize("delay", [1.0, 2.5, True])
def test_schedule_rejects_non_integer_delay(delay):
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(delay, lambda: None)


@pytest.mark.parametrize("time", [10.0, 0.5, False])
def test_schedule_at_rejects_non_integer_time(time):
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule_at(time, lambda: None)


def test_pending_events_excludes_cancelled():
    engine = Engine()
    kept = engine.schedule(10, lambda: None)
    doomed = engine.schedule(20, lambda: None)
    assert engine.pending_events == 2
    doomed.cancel()
    assert engine.pending_events == 1
    kept.cancel()
    assert engine.pending_events == 0


def test_pending_events_exact_under_cancel_heavy_schedule():
    # Regression for the O(1) live-event counter: cancelling enough
    # events to trigger heap compaction must keep pending_events exact
    # and must not disturb firing order of the survivors.
    engine = Engine()
    fired = []
    events = [engine.schedule(1000 + i, lambda i=i: fired.append(i))
              for i in range(500)]
    live = len(events)
    for i, event in enumerate(events):
        if i % 3 != 0:
            event.cancel()
            event.cancel()       # cancel is idempotent
            live -= 1
        assert engine.pending_events == live
    engine.run_until_idle()
    assert fired == [i for i in range(500) if i % 3 == 0]
    assert engine.pending_events == 0


def test_cancel_after_fire_is_a_noop():
    engine = Engine()
    event = engine.schedule(1, lambda: None)
    engine.run_until_idle()
    assert engine.pending_events == 0
    event.cancel()
    assert engine.pending_events == 0


def test_bounded_run_never_rewinds_the_clock():
    # The time-skip fast path jumps the clock to `until`; a later run
    # with an earlier bound must not rewind it, or schedule_at could
    # admit events into the rewound window and fire them out of order.
    engine = Engine()
    engine.schedule(20, lambda: None)
    engine.run(until=10)
    assert engine.now == 10
    engine.run(until=5)
    assert engine.now == 10
    with pytest.raises(SimulationError):
        engine.schedule_at(7, lambda: None)
    engine.run_until_idle()
    assert engine.now == 20


def test_time_skip_with_cancel_heavy_heap_keeps_invariants():
    # Cancelling enough events to trigger compaction, then time-skipping
    # past the dead region, must leave peek_time/now consistent so the
    # schedule_at past-time check stays exact.
    engine = Engine()
    doomed = [engine.schedule(100 + i, lambda: None) for i in range(200)]
    fired = []
    engine.schedule(500, lambda: fired.append(engine.now))
    for event in doomed:
        event.cancel()
    assert engine.peek_time() == 500
    engine.run(until=400)          # pure time-skip: nothing fires
    assert engine.now == 400
    assert fired == []
    engine.schedule_at(450, lambda: fired.append(engine.now))
    engine.run_until_idle()
    assert fired == [450, 500]
    assert engine.now == 500


def test_events_fired_counter():
    engine = Engine()
    for _ in range(4):
        engine.schedule(1, lambda: None)
    engine.run_until_idle()
    assert engine.events_fired == 4
