"""Unit tests for the bounded request queues."""

import pytest

from repro.errors import SimulationError
from repro.sim.queueing import BoundedQueue
from repro.sim.request import MemoryRequest, Origin


def req(addr, is_write=True):
    return MemoryRequest(addr, is_write, Origin.CPU)


def test_enqueue_until_full():
    queue = BoundedQueue("q", 2)
    assert queue.try_enqueue(req(0))
    assert queue.try_enqueue(req(64))
    assert queue.full
    assert not queue.try_enqueue(req(128))
    assert queue.total_enqueued == 2
    assert queue.max_occupancy == 2


def test_pop_is_fifo():
    queue = BoundedQueue("q", 4)
    first, second = req(0), req(64)
    queue.try_enqueue(first)
    queue.try_enqueue(second)
    assert queue.pop() is first
    assert queue.pop() is second


def test_pop_empty_raises():
    queue = BoundedQueue("q", 4)
    with pytest.raises(SimulationError):
        queue.pop()


def test_waiter_woken_on_pop():
    queue = BoundedQueue("q", 1)
    queue.try_enqueue(req(0))
    woken = []
    queue.wait_for_slot(lambda: woken.append(1))
    assert not woken
    queue.pop()
    assert woken == [1]


def test_pop_best_prefers_row_hit():
    queue = BoundedQueue("q", 4)
    a, b, c = req(0), req(64), req(128)
    for r in (a, b, c):
        queue.try_enqueue(r)
    assert queue.pop_best(lambda r: r.addr == 128) is c


def test_pop_best_never_reorders_same_address():
    queue = BoundedQueue("q", 4)
    head = req(0)
    old = req(64)
    new = req(64)
    for r in (head, old, new):
        queue.try_enqueue(r)
    # Preferring the *younger* same-address request must not pick it;
    # pop_best falls back to the FIFO head instead.
    got = queue.pop_best(lambda r: r is new)
    assert got is head


def test_pop_ready_respects_bank_availability():
    queue = BoundedQueue("q", 4)
    a, b = req(0), req(64)
    queue.try_enqueue(a)
    queue.try_enqueue(b)
    got = queue.pop_ready(lambda r: r.addr == 64, lambda r: False)
    assert got is b
    assert len(queue) == 1


def test_pop_ready_same_address_fifo():
    queue = BoundedQueue("q", 4)
    old, new = req(64), req(64)
    queue.try_enqueue(old)
    queue.try_enqueue(new)
    # Even if only the younger one is "ready", it must not bypass the
    # older same-address request.
    got = queue.pop_ready(lambda r: r is new, lambda r: True)
    assert got is None or got is old


def test_pop_ready_returns_none_when_nothing_ready():
    queue = BoundedQueue("q", 4)
    queue.try_enqueue(req(0))
    assert queue.pop_ready(lambda r: False, lambda r: False) is None


def test_drop_all_clears_items_and_waiters():
    queue = BoundedQueue("q", 1)
    queue.try_enqueue(req(0))
    woken = []
    queue.wait_for_slot(lambda: woken.append(1))
    dropped = queue.drop_all()
    assert dropped == 1
    assert not queue
    assert not woken, "crash must not wake producers"
