"""Unit tests for the bounded request queues."""

import pytest

from repro.errors import SimulationError
from repro.sim.queueing import BoundedQueue
from repro.sim.request import MemoryRequest, Origin


def req(addr, is_write=True, origin=Origin.CPU, bank=0, row=0):
    request = MemoryRequest(addr, is_write, origin)
    # The controller normally caches the device decode at submit time;
    # unit tests assign bank/row directly.
    request.bank = bank
    request.row = row
    return request


def test_enqueue_until_full():
    queue = BoundedQueue("q", 2)
    assert queue.try_enqueue(req(0))
    assert queue.try_enqueue(req(64))
    assert queue.full
    assert not queue.try_enqueue(req(128))
    assert queue.total_enqueued == 2
    assert queue.max_occupancy == 2


def test_pop_is_fifo():
    queue = BoundedQueue("q", 4)
    first, second = req(0), req(64)
    queue.try_enqueue(first)
    queue.try_enqueue(second)
    assert queue.pop() is first
    assert queue.pop() is second


def test_pop_empty_raises():
    queue = BoundedQueue("q", 4)
    with pytest.raises(SimulationError):
        queue.pop()


def test_waiter_woken_on_pop():
    queue = BoundedQueue("q", 1)
    queue.try_enqueue(req(0))
    woken = []
    queue.wait_for_slot(lambda: woken.append(1))
    assert not woken
    queue.pop()
    assert woken == [1]


def test_pop_ready_prefers_row_hit():
    queue = BoundedQueue("q", 4)
    a = req(0, bank=0, row=0)
    b = req(64, bank=1, row=0)
    c = req(128, bank=2, row=5)
    for r in (a, b, c):
        queue.try_enqueue(r)
    # Only c hits an open row; row hits beat FIFO order.
    got = queue.pop_ready(set(), [None, None, 5, None])
    assert got is c


def test_pop_ready_falls_back_to_fifo_among_misses():
    queue = BoundedQueue("q", 4)
    a = req(0, bank=0, row=0)
    b = req(64, bank=1, row=0)
    queue.try_enqueue(a)
    queue.try_enqueue(b)
    got = queue.pop_ready(set(), [None, None])
    assert got is a


def test_pop_ready_respects_bank_availability():
    queue = BoundedQueue("q", 4)
    a = req(0, bank=0)
    b = req(64, bank=1)
    queue.try_enqueue(a)
    queue.try_enqueue(b)
    got = queue.pop_ready({0}, [None, None])
    assert got is b
    assert len(queue) == 1


def test_pop_ready_same_address_fifo():
    queue = BoundedQueue("q", 4)
    old, new = req(64, bank=1, row=3), req(64, bank=1, row=3)
    queue.try_enqueue(old)
    queue.try_enqueue(new)
    # The younger same-address request must not bypass the older one,
    # even when it would be a row hit.
    got = queue.pop_ready(set(), [None, 3])
    assert got is old


def test_pop_ready_demand_priority():
    queue = BoundedQueue("q", 4)
    background = req(0, origin=Origin.MIGRATION, bank=0, row=0)
    demand = req(64, origin=Origin.CPU, bank=1, row=0)
    queue.try_enqueue(background)
    queue.try_enqueue(demand)
    # With demand priority, the younger CPU read beats the older
    # background read; without it, FIFO order wins.
    assert queue.pop_ready(set(), [None, None], demand_priority=True) is demand
    queue.try_enqueue(demand)
    assert queue.pop_ready(set(), [None, None]) is background


def test_pop_ready_returns_none_when_nothing_ready():
    queue = BoundedQueue("q", 4)
    queue.try_enqueue(req(0, bank=0))
    assert queue.pop_ready({0}, [None]) is None


def test_drop_all_clears_items_and_waiters():
    queue = BoundedQueue("q", 1)
    queue.try_enqueue(req(0))
    woken = []
    queue.wait_for_slot(lambda: woken.append(1))
    dropped = queue.drop_all()
    assert dropped == 1
    assert not queue
    assert not woken, "crash must not wake producers"
