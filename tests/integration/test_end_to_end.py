"""Integration tests: full machine (CPU + caches + memory system)."""

import pytest

from repro.config import small_test_config
from repro.harness.runner import execute, run_workload
from repro.harness.systems import build_system
from repro.workloads.kvstore.workload import KVWorkload, kv_trace
from repro.workloads.micro import random_trace, streaming_trace


def test_thynvm_checkpoints_during_real_execution():
    config = small_test_config(epoch_cycles=30_000)
    result = run_workload("thynvm", random_trace(128 * 1024, 2000), config)
    stats = result.stats
    assert stats.epochs_completed >= 2
    assert stats.nvm_writes.get("checkpoint") > 0
    # Overlapped checkpointing keeps the stall share low even here.
    assert stats.checkpoint_stall_fraction < 0.5


def test_streaming_promotes_pages_end_to_end():
    config = small_test_config(epoch_cycles=60_000)
    result = run_workload("thynvm", streaming_trace(96 * 1024, 4000), config)
    assert result.stats.pages_promoted > 0


def test_kv_store_runs_on_every_consistency_system():
    config = small_test_config()
    workload = KVWorkload(num_ops=60, preload=30, request_size=64,
                          heap_bytes=128 * 1024)
    for system in ("journal", "shadow", "thynvm"):
        result = run_workload(system, kv_trace(workload), config)
        assert result.stats.transactions == 60


def test_flush_preserves_cache_residency():
    """After an epoch flush, re-reads hit the cache (CLWB semantics)."""
    config = small_test_config(epoch_cycles=50_000)
    system = build_system("thynvm", config)
    trace = list(random_trace(16 * 1024, 600, seed=3))
    result = execute(system, trace)
    hits = result.stats.cache_hits.total()
    misses = result.stats.cache_misses.total()
    assert hits > misses


def test_relative_ordering_of_systems_on_random():
    """The paper's headline ordering holds even at test scale."""
    config = small_test_config(epoch_cycles=50_000)
    cycles = {}
    for system in ("ideal_dram", "thynvm", "shadow"):
        trace = random_trace(128 * 1024, 1500, seed=7)
        cycles[system] = run_workload(system, trace, config).cycles
    assert cycles["ideal_dram"] <= cycles["thynvm"] <= cycles["shadow"]


def test_stats_conservation():
    """Every transaction and instruction in the trace is accounted."""
    config = small_test_config()
    trace = list(random_trace(32 * 1024, 500, seed=1, txn_every=10))
    expected_instr = sum(
        op.size if op.kind.value == "work" else 1
        for op in trace if op.kind.value in ("work", "read", "write"))
    result = run_workload("thynvm", trace, config)
    assert result.stats.instructions == expected_instr
    assert result.stats.transactions == 50
