"""Golden determinism guard for the simulator hot path.

``tests/golden/micro_summaries.json`` snapshots
``StatsCollector.summary()`` for every compared system on the Fig. 7/8
micro-benchmark workloads, captured *before* the hot-path optimization
pass.  This test re-runs the same matrix and asserts the summaries are
byte-identical — any perf work that changes a single simulated outcome
(cycle counts, traffic breakdowns, epoch counts, stall attribution)
fails here, not in a noisy figure diff.

The guard stays in tree to protect future perf work.  Regenerate the
goldens only when a change is *supposed* to alter simulated results:

    PYTHONPATH=src python tests/integration/test_golden_determinism.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.experiments import MICRO_FOOTPRINT, experiment_config
from repro.harness.runner import run_workload
from repro.workloads.tracespec import micro_spec

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "micro_summaries.json"

# The five compared systems x the three Fig. 7/8 access patterns.
SYSTEMS = ("ideal_dram", "ideal_nvm", "journal", "shadow", "thynvm")
WORKLOADS = ("random", "streaming", "sliding")
NUM_OPS = 2000
SEED = 1


def _cells():
    for workload in WORKLOADS:
        for system in SYSTEMS:
            yield f"{workload}/{system}", workload, system


def _run_cell(workload: str, system: str) -> dict:
    spec = micro_spec(workload, MICRO_FOOTPRINT, NUM_OPS, seed=SEED)
    result = run_workload(system, spec.build(), experiment_config())
    # Round-trip through JSON so the comparison sees exactly what the
    # golden file stores (e.g. dict key ordering, float rendering).
    return json.loads(json.dumps(result.stats.summary(), sort_keys=True))


def _load_goldens() -> dict:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("cell,workload,system",
                         list(_cells()),
                         ids=[cell for cell, _, _ in _cells()])
def test_summary_matches_golden(cell, workload, system):
    goldens = _load_goldens()
    assert cell in goldens, (
        f"no golden for {cell}; regenerate with "
        f"`python {Path(__file__).relative_to(Path.cwd())} --regen`")
    assert _run_cell(workload, system) == goldens[cell], (
        f"simulated results changed for {cell}: the optimization pass "
        f"must be byte-identical (see docs/PERFORMANCE.md)")


def _regen() -> None:
    goldens = {cell: _run_cell(workload, system)
               for cell, workload, system in _cells()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(goldens)} golden summaries to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
