"""The backing store must never change simulated outcomes.

``--store mmap`` swaps the functional stores for file-backed mappings
(docs/PERSISTENCE.md) — a *data plane* change only.  Timing, traffic
breakdowns, epoch counts and stall attribution must stay byte-identical
to the goldens captured with the in-memory stores, for every cell of
the compared-system matrix.  A store backend that leaks into simulated
results (an extra request, a reordered completion) fails here against
the exact same ``tests/golden/micro_summaries.json`` the default-mode
guard uses.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.harness.experiments import MICRO_FOOTPRINT, experiment_config
from repro.harness.runner import run_workload
from repro.workloads.tracespec import micro_spec

from .test_golden_determinism import (
    NUM_OPS, SEED, SYSTEMS, WORKLOADS, _cells, _load_goldens)


def _run_mmap_cell(workload: str, system: str, tmp_path) -> dict:
    config = dataclasses.replace(experiment_config(), store_mode="mmap",
                                 store_dir=str(tmp_path))
    spec = micro_spec(workload, MICRO_FOOTPRINT, NUM_OPS, seed=SEED)
    result = run_workload(system, spec.build(), config)
    return json.loads(json.dumps(result.stats.summary(), sort_keys=True))


@pytest.mark.parametrize("cell,workload,system", list(_cells()),
                         ids=[cell for cell, _, _ in _cells()])
def test_mmap_store_matches_golden(cell, workload, system, tmp_path):
    goldens = _load_goldens()
    assert _run_mmap_cell(workload, system, tmp_path) == goldens[cell], (
        f"--store mmap changed simulated results for {cell}: the store "
        f"backend must be a pure data-plane swap (docs/PERSISTENCE.md)")


def test_store_axis_covers_all_cells():
    """The sweep really is the whole compared matrix."""
    assert len(list(_cells())) == len(SYSTEMS) * len(WORKLOADS) == 15
