"""End-to-end crash/recovery with the full machine in the loop.

A CPU executes a store-heavy trace over ThyNVM; power fails mid-run
(caches, DRAM and queues are lost); recovery must produce the image of
a committed epoch boundary.  Because caches defer stores, the golden
tracking here is coarser than the direct-drive tests: we assert
recovery lands on *some* consistent prefix state — every recovered
block holds either its pre-crash committed value or zeros, never a
torn or post-crash value — plus exact-match runs where the trace
fully drains first.
"""

import pytest

from repro.config import small_test_config
from repro.harness.systems import build_system
from repro.sim.request import Origin
from repro.workloads.micro import random_trace

from ..conftest import pad


def test_crash_mid_run_recovers_consistently():
    config = small_test_config(epoch_cycles=40_000)
    system = build_system("thynvm", config)
    system.memsys.start()
    system.core.run_trace(iter(random_trace(64 * 1024, 3000, seed=5)),
                          lambda: None)
    system.engine.run(until=800_000)
    assert system.stats.epochs_completed >= 2
    system.memsys.crash()
    recovered = system.memsys.recover()
    assert recovered.epoch >= 0
    # Every recovered block decodes as either zeros or a legal value
    # (our trace writes whole blocks; torn blocks would mix).
    for block in range(64 * 1024 // 64):
        data = recovered.visible_block(block)
        assert len(data) == 64


def test_completed_run_recovers_final_state():
    """Drain the run fully, crash, recover: all writes must survive."""
    config = small_test_config()
    system = build_system("thynvm", config)
    ctl = system.memsys

    # Drive the port directly below the caches for exact expectations.
    expected = {}
    ctl.start()
    for block in range(32):
        data = pad(f"final{block}".encode())
        ctl.write_block(block * 64, Origin.CPU, data=data)
        expected[block] = data
    done = []
    ctl.drain(lambda: done.append(1))
    from ..conftest import run_until
    run_until(system.engine, lambda: bool(done))
    ctl.stop()        # park the periodic epoch timers
    assert done
    ctl.crash()
    recovered = ctl.recover()
    for block, data in expected.items():
        assert recovered.visible_block(block) == data


def test_recovered_epoch_is_monotone_in_crash_time():
    """Crashing later never recovers an earlier epoch."""
    config = small_test_config(epoch_cycles=30_000)
    last_epoch = -2
    for horizon in (100_000, 400_000, 900_000):
        system = build_system("thynvm", config)
        system.memsys.start()
        system.core.run_trace(iter(random_trace(32 * 1024, 2500, seed=9)),
                              lambda: None)
        system.engine.run(until=horizon)
        system.memsys.crash()
        recovered = system.memsys.recover()
        assert recovered.epoch >= last_epoch
        last_epoch = recovered.epoch
