"""Tests for the buffer-capacity relief paths of the baselines.

When a DRAM buffer fills *during the epoch-boundary cache flush*, the
stop-the-world baselines cannot wait for an epoch boundary (the flush
is the boundary) — they run an auxiliary sub-epoch checkpoint instead.
These tests drive that corner directly.
"""

from types import SimpleNamespace

import pytest

from repro.baselines.journaling import JournalingController
from repro.baselines.shadow import ShadowPagingController
from repro.config import small_test_config
from repro.mem.controller import MemoryController
from repro.sim.engine import Engine
from repro.sim.request import Origin
from repro.stats.collector import StatsCollector

from ..conftest import MANUAL_EPOCHS, pad, run_until, settle


def build(cls, **config_overrides):
    config = small_test_config(epoch_cycles=MANUAL_EPOCHS,
                               **config_overrides)
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    controller = cls(engine, config, memctrl, stats)
    controller.start()
    return SimpleNamespace(engine=engine, config=config, stats=stats,
                           memctrl=memctrl, ctl=controller)


def test_journal_full_buffer_recovers_via_aux_run():
    # Tiny journal: buffer capacity = btt + ptt entries.
    s = build(JournalingController, btt_entries=16, ptt_entries=16)
    capacity = s.ctl.buffer_capacity
    written = {}
    for block in range(capacity * 2):
        data = pad(bytes([block % 251]))
        s.ctl.write_block(block * 64, Origin.CPU, data=data)
        written[block] = data
        settle(s.engine, 2_000)
    run_until(s.engine, lambda: s.stats.epochs_completed >= 1)
    done = []
    s.ctl.drain(lambda: done.append(1))
    run_until(s.engine, lambda: bool(done))
    for block, data in written.items():
        assert s.ctl.visible_block_bytes(block) == data


def test_shadow_slot_exhaustion_never_wedges():
    s = build(ShadowPagingController, dram_bytes=16 * 1024)   # 4 slots
    pages = s.ctl.layout.slots_total * 3
    for page in range(pages):
        s.ctl.write_block(page * s.config.page_bytes, Origin.CPU,
                          data=pad(bytes([page + 1])))
        settle(s.engine, 30_000)
    done = []
    s.ctl.drain(lambda: done.append(1))
    run_until(s.engine, lambda: bool(done))
    for page in range(pages):
        block = page * s.config.blocks_per_page
        assert s.ctl.visible_block_bytes(block) == pad(bytes([page + 1]))


def test_journal_watermark_prevents_hard_overflow():
    s = build(JournalingController, btt_entries=32, ptt_entries=16)
    for block in range(46):   # past the 7/8 watermark of 48 slots
        s.ctl.write_block(block * 64, Origin.CPU, data=pad(b"w"))
        settle(s.engine, 1_000)
    run_until(s.engine, lambda: s.stats.epochs_completed >= 1)
    # The high-watermark early end fired before the buffer hard-filled.
    assert s.stats.epochs_forced_by_overflow >= 1
