"""Functional tests for the journaling baseline."""

from types import SimpleNamespace

import pytest

from repro.baselines.journaling import JournalingController
from repro.config import small_test_config
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.sim.request import Origin
from repro.stats.collector import StatsCollector

from ..conftest import MANUAL_EPOCHS, pad, run_until, settle


@pytest.fixture
def system():
    config = small_test_config(epoch_cycles=MANUAL_EPOCHS)
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    controller = JournalingController(engine, config, memctrl, stats)
    controller.start()
    return SimpleNamespace(engine=engine, config=config, stats=stats,
                           memctrl=memctrl, ctl=controller)


def write(system, block, data):
    system.ctl.write_block(block * 64, Origin.CPU, data=pad(data))


def end_epoch(system):
    epoch = system.ctl.epoch
    system.ctl.force_epoch_end("test")
    run_until(system.engine, lambda: system.ctl.epoch > epoch)


def test_writes_buffer_in_dram(system):
    write(system, 3, b"buffered")
    settle(system.engine, 2_000)
    assert system.stats.nvm_writes.total() == 0
    assert system.ctl.visible_block_bytes(3) == pad(b"buffered")


def test_checkpoint_writes_twice(system):
    for block in range(8):
        write(system, block, bytes([block]))
    settle(system.engine, 5_000)
    end_epoch(system)
    # Redo journaling: one log write + one in-place write per block
    # (plus CPU state and the commit record).
    assert system.stats.nvm_writes.get("journal") == 8
    assert system.stats.nvm_writes.get("checkpoint") >= 8
    # In-place data is now at home.
    nvm = system.memctrl.functional_store(DeviceKind.NVM)
    for block in range(8):
        assert nvm.read(system.ctl.layout.home_block_addr(block)) == \
            pad(bytes([block]))


def test_buffer_coalesces_rewrites(system):
    for _ in range(5):
        write(system, 3, b"same-block")
    settle(system.engine, 5_000)
    end_epoch(system)
    assert system.stats.nvm_writes.get("journal") == 1


def test_crash_before_log_commit_rolls_back(system):
    write(system, 3, b"committed")
    end_epoch(system)
    write(system, 3, b"lost")
    settle(system.engine, 1_000)
    system.ctl.crash()
    assert system.ctl.recovered_block(3) == pad(b"committed")


def test_crash_after_log_commit_replays_log(system):
    write(system, 3, b"v1")
    end_epoch(system)
    write(system, 3, b"v2")
    settle(system.engine, 2_000)
    # Crash precisely when the log stage becomes durable, before the
    # in-place writes commit: recovery must replay the log.
    original = system.ctl._on_ckpt_stage

    def crash_after_log(stage_index):
        original(stage_index)
        if stage_index == 1:
            system.ctl.crash()

    system.ctl._on_ckpt_stage = crash_after_log
    system.ctl.force_epoch_end("test")
    settle(system.engine, 50_000_000)
    assert system.ctl._committed_log is not None
    assert system.ctl.recovered_block(3) == pad(b"v2")


def test_recovery_always_some_epoch_boundary(system):
    goldens = {}
    for epoch in range(3):
        for block in range(6):
            write(system, block, f"e{epoch}b{block}".encode())
        settle(system.engine, 3_000)
        end_epoch(system)
        goldens[epoch] = {
            block: pad(f"e{epoch}b{block}".encode()) for block in range(6)}
    write(system, 0, b"uncommitted")
    settle(system.engine, 500)
    system.ctl.crash()
    recovered = {b: system.ctl.recovered_block(b) for b in range(6)}
    assert recovered == goldens[2]


def test_overflow_forces_epoch(system):
    capacity = system.ctl.buffer_capacity
    for block in range(capacity + 8):
        write(system, block, b"x")
        settle(system.engine, 200)
    run_until(system.engine, lambda: system.stats.epochs_completed >= 1)
    assert system.stats.epochs_forced_by_overflow >= 1
