"""Functional tests for the shadow-paging baseline."""

from types import SimpleNamespace

import pytest

from repro.baselines.shadow import ShadowPagingController
from repro.config import small_test_config
from repro.core.regions import REGION_B
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.sim.request import Origin
from repro.stats.collector import StatsCollector

from ..conftest import MANUAL_EPOCHS, pad, run_until, settle


@pytest.fixture
def system():
    config = small_test_config(epoch_cycles=MANUAL_EPOCHS)
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    controller = ShadowPagingController(engine, config, memctrl, stats)
    controller.start()
    return SimpleNamespace(engine=engine, config=config, stats=stats,
                           memctrl=memctrl, ctl=controller)


def write(system, block, data):
    system.ctl.write_block(block * 64, Origin.CPU, data=pad(data))


def end_epoch(system):
    epoch = system.ctl.epoch
    system.ctl.force_epoch_end("test")
    run_until(system.engine, lambda: system.ctl.epoch > epoch)


def test_copy_on_write_buffers_page(system):
    write(system, 3, b"cow")
    settle(system.engine, 200_000)
    page = system.ctl.addresses.page_of_block(3)
    assert page in system.ctl._pages
    # The CoW copy costs a page of migration reads.
    assert system.stats.nvm_reads.get("migration") == \
        system.config.blocks_per_page
    assert system.ctl.visible_block_bytes(3) == pad(b"cow")


def test_checkpoint_writes_whole_page(system):
    write(system, 3, b"one-block")     # 1 dirty block in the page
    settle(system.engine, 5_000)
    end_epoch(system)
    # Full-page flush: write amplification for sparse dirty data.
    assert (system.stats.nvm_writes.get("checkpoint")
            >= system.config.blocks_per_page)


def test_shadow_never_overwrites_committed_copy(system):
    write(system, 3, b"v1")
    end_epoch(system)
    page = system.ctl.addresses.page_of_block(3)
    region_v1 = system.ctl._committed_region(page)
    write(system, 3, b"v2")
    end_epoch(system)
    assert system.ctl._committed_region(page) != region_v1
    # v1's copy still exists in its region (shadow semantics).
    nvm = system.memctrl.functional_store(DeviceKind.NVM)
    addr_v1 = (system.ctl.layout.region_page_addr(region_v1, page)
               + (3 % system.config.blocks_per_page) * 64)
    assert nvm.read(addr_v1) == pad(b"v1")


def test_crash_recovers_committed_state(system):
    write(system, 3, b"stable")
    end_epoch(system)
    write(system, 3, b"doomed")
    settle(system.engine, 1_000)
    system.ctl.crash()
    assert system.ctl.recovered_block(3) == pad(b"stable")


def test_untouched_blocks_recover_from_home(system):
    write(system, 3, b"x")
    end_epoch(system)
    system.ctl.crash()
    assert system.ctl.recovered_block(200) == bytes(64)
    assert system.ctl._committed_region(0) == REGION_B or True


def test_clean_page_eviction_under_pressure(system):
    # Touch more pages than there are DRAM slots; clean pages from
    # committed epochs must be evicted rather than wedging.
    slots = system.ctl.layout.slots_total
    for page in range(slots // 2):
        write(system, page * system.config.blocks_per_page, b"a")
    settle(system.engine, 50_000)
    end_epoch(system)
    for page in range(slots // 2, slots + 4):
        write(system, page * system.config.blocks_per_page, b"b")
        settle(system.engine, 20_000)
    run_until(system.engine, lambda: True)
    # All data visible.
    assert system.ctl.visible_block_bytes(0) == pad(b"a")
