"""Tests for the uniform-granularity ThyNVM ablations."""

import pytest

from repro.baselines.single_granularity import (block_only_policy,
                                                page_only_policy)
from repro.core.controller import ThyNVMPolicy
from repro.errors import SimulationError

from ..conftest import end_epoch, make_direct, pad, settle, write_block


def test_block_only_never_promotes():
    s = make_direct(policy=block_only_policy())
    first = 2 * s.config.blocks_per_page
    for offset in range(s.config.blocks_per_page):
        write_block(s, first + offset, bytes([offset]))
    settle(s.engine)
    end_epoch(s)
    end_epoch(s)
    assert len(s.ctl.ptt) == 0
    assert s.stats.pages_promoted == 0
    for offset in range(s.config.blocks_per_page):
        assert s.ctl.visible_block_bytes(first + offset) == pad(bytes([offset]))


def test_page_only_adopts_on_first_write():
    s = make_direct(policy=page_only_policy())
    write_block(s, 5, b"adopt")
    settle(s.engine)
    page = s.ctl.addresses.page_of_block(5)
    assert page in s.ctl.ptt
    assert len(s.ctl.btt) == 0
    assert s.ctl.visible_block_bytes(5) == pad(b"adopt")


def test_page_only_checkpoints_full_pages():
    s = make_direct(policy=page_only_policy())
    write_block(s, 5, b"one")            # single dirty block
    settle(s.engine)
    end_epoch(s)
    assert (s.stats.nvm_writes.get("checkpoint")
            >= s.config.blocks_per_page)


def test_page_only_survives_crash_at_commit():
    s = make_direct(policy=page_only_policy())
    write_block(s, 5, b"v1")
    settle(s.engine)
    end_epoch(s)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.visible_block(5) == pad(b"v1")


def test_invalid_policy_combinations_rejected():
    with pytest.raises(SimulationError):
        ThyNVMPolicy(enable_page_writeback=False,
                     enable_block_remapping=False)
    with pytest.raises(SimulationError):
        ThyNVMPolicy(enable_block_remapping=False,
                     adopt_on_first_write=False)
