"""Unit tests for the ideal (no-consistency-cost) systems."""

import pytest

from repro.baselines.ideal import IdealController
from repro.config import small_test_config
from repro.errors import CrashedError
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.sim.request import Origin
from repro.stats.collector import StatsCollector


@pytest.fixture(params=[DeviceKind.DRAM, DeviceKind.NVM])
def setup(request):
    config = small_test_config()
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    controller = IdealController(engine, config, memctrl, stats,
                                 request.param)
    controller.start()
    return engine, controller, stats, request.param


def test_write_read_round_trip(setup):
    engine, controller, _stats, _device = setup
    controller.write_block(0, Origin.CPU, data=b"i" * 64)
    got = {}
    controller.read_block(0, Origin.CPU, lambda r: got.update(d=r.data))
    engine.run_until_idle()
    assert got["d"] == b"i" * 64


def test_no_checkpoint_traffic(setup):
    engine, controller, stats, device = setup
    for i in range(16):
        controller.write_block(i * 64, Origin.CPU)
    engine.run_until_idle()
    assert stats.nvm_writes.get("checkpoint") == 0
    assert stats.epochs_completed == 0
    if device is DeviceKind.DRAM:
        assert stats.nvm_writes.total() == 0
    else:
        assert stats.dram_writes.total() == 0


def test_drain_without_hierarchy_is_immediate(setup):
    _engine, controller, _stats, _device = setup
    done = []
    controller.drain(lambda: done.append(1))
    assert done == [1]


def test_crash_then_reads_rejected(setup):
    engine, controller, _stats, device = setup
    controller.write_block(0, Origin.CPU, data=b"x" * 64)
    engine.run_until_idle()
    controller.crash()
    with pytest.raises(CrashedError):
        controller.read_block(0, Origin.CPU, lambda r: None)
    with pytest.raises(CrashedError):
        controller.crash()
    if device is DeviceKind.NVM:
        assert controller.visible_block_bytes(0) == b"x" * 64
