"""Unit tests for the staged checkpoint runner."""

import pytest

from repro.config import small_test_config
from repro.core.checkpoint import CheckpointRun, Job
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.sim.request import MemoryRequest, Origin
from repro.stats.collector import StatsCollector


@pytest.fixture
def setup():
    config = small_test_config()
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    return engine, memctrl, stats, config


def write_job(addr, data=None):
    return Job(dst_kind=DeviceKind.NVM, dst_addr=addr,
               origin=Origin.CHECKPOINT, data=data)


def copy_job(src, dst):
    return Job(dst_kind=DeviceKind.NVM, dst_addr=dst,
               origin=Origin.CHECKPOINT,
               src_kind=DeviceKind.DRAM, src_addr=src)


def test_empty_run_commits_immediately(setup):
    engine, memctrl, _stats, _config = setup
    committed = []
    run = CheckpointRun(engine, memctrl, [[], [], []], 0,
                        lambda: committed.append(engine.now))
    run.start()
    engine.run_until_idle()
    assert committed
    assert run.duration is not None


def test_stage_barrier_ordering(setup):
    engine, memctrl, stats, _config = setup
    seen_stages = []
    stage1 = [write_job(i * 64) for i in range(8)]
    stage2 = [write_job((100 + i) * 64) for i in range(8)]
    run = CheckpointRun(engine, memctrl, [stage1, stage2], 64 * 10_000,
                        lambda: seen_stages.append("commit"),
                        on_stage=lambda i: seen_stages.append(i))
    run.start()
    engine.run_until_idle()
    assert seen_stages == [0, 1, "commit"]


def test_copy_jobs_move_data(setup):
    engine, memctrl, _stats, _config = setup
    dram = memctrl.functional_store(DeviceKind.DRAM)
    dram.write(128, b"c" * 64)
    committed = []
    run = CheckpointRun(engine, memctrl, [[copy_job(128, 4096)]], 64 * 9000,
                        lambda: committed.append(1))
    run.start()
    engine.run_until_idle()
    assert committed
    nvm = memctrl.functional_store(DeviceKind.NVM)
    assert nvm.read(4096) == b"c" * 64


def test_backpressure_with_many_jobs(setup):
    engine, memctrl, _stats, config = setup
    jobs = [write_job(i * 64) for i in range(300)]   # >> queue capacity
    committed = []
    run = CheckpointRun(engine, memctrl, [jobs], 64 * 10_000,
                        lambda: committed.append(1))
    run.start()
    engine.run_until_idle()
    assert committed


def test_commit_record_is_written_last(setup):
    engine, memctrl, stats, _config = setup
    commit_addr = 64 * 12_000
    committed = []
    run = CheckpointRun(engine, memctrl, [[write_job(0)]], commit_addr,
                        lambda: committed.append(engine.now))
    run.start()
    engine.run_until_idle()
    # Exactly one commit write plus the data write reached NVM.
    assert stats.nvm_writes.get("checkpoint") == 2
    assert committed


def test_abort_silences_callbacks(setup):
    engine, memctrl, _stats, _config = setup
    committed = []
    run = CheckpointRun(engine, memctrl, [[write_job(0)]], 64 * 9000,
                        lambda: committed.append(1))
    run.start()
    run.abort()
    engine.run_until_idle()
    assert not committed


def test_fence_excludes_later_demand_writes(setup):
    """The commit fence must not wait for writes submitted after it."""
    engine, memctrl, _stats, _config = setup
    committed = []
    run = CheckpointRun(engine, memctrl, [[write_job(0)]], 64 * 9000,
                        lambda: committed.append(engine.now))
    run.start()

    # Feed a continuous stream of demand writes.
    def feed(i=0):
        if i > 200 or memctrl.crashed:
            return
        memctrl.submit(DeviceKind.NVM,
                       MemoryRequest((500 + i % 8) * 64, True, Origin.CPU))
        engine.schedule(200, lambda: feed(i + 1))

    feed()
    engine.run_until_idle()
    assert committed, "commit starved by ongoing demand traffic"
