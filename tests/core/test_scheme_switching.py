"""Functional tests of promotion, demotion, cooperation and GC (§3.4)."""

import pytest

from repro.config import small_test_config
from repro.core import probes
from repro.core.epoch import Phase
from repro.core.regions import REGION_A, REGION_B
from repro.errors import CrashedError
from repro.mem.controller import DeviceKind

from ..conftest import (MANUAL_EPOCHS, end_epoch, make_direct, pad,
                        read_block, run_until, settle, write_block)


def hot_page_writes(system, page, value_tag=b"h"):
    """Write every block of a page (well past the promote threshold)."""
    cfg = system.config
    first = page * cfg.blocks_per_page
    for offset in range(cfg.blocks_per_page):
        write_block(system, first + offset,
                    value_tag + bytes([offset]))
    settle(system.engine)


def test_hot_page_promoted_at_commit(direct_system):
    s = direct_system
    hot_page_writes(s, page=2)
    assert 2 not in s.ctl.ptt
    end_epoch(s)
    assert 2 in s.ctl.ptt
    assert s.stats.pages_promoted == 1
    # Data visible through the DRAM page.
    first = 2 * s.config.blocks_per_page
    assert s.ctl.visible_block_bytes(first + 5) == pad(b"h" + bytes([5]))


def test_promoted_page_writes_go_to_dram(direct_system):
    s = direct_system
    hot_page_writes(s, page=2)
    end_epoch(s)
    pe = s.ctl.ptt.lookup(2)
    first = 2 * s.config.blocks_per_page
    write_block(s, first + 1, b"dram!")
    settle(s.engine)
    assert 1 in pe.dirty_active
    slot_addr = s.ctl.layout.slot_block_addr(pe.dram_slot, 1)
    dram = s.memctrl.functional_store(DeviceKind.DRAM)
    assert dram.read(slot_addr) == pad(b"dram!")


def test_page_checkpoint_writes_full_page(direct_system):
    s = direct_system
    hot_page_writes(s, page=2)
    end_epoch(s)
    first = 2 * s.config.blocks_per_page
    write_block(s, first, b"e1")
    before = s.stats.nvm_writes.get("checkpoint")
    end_epoch(s)
    delta = s.stats.nvm_writes.get("checkpoint") - before
    # Full-page writeback: at least blocks_per_page checkpoint writes.
    assert delta >= s.config.blocks_per_page
    pe = s.ctl.ptt.lookup(2)
    # The hot page was promoted with stable region A (its committed
    # block copies live there), so its first writeback targeted B.
    assert pe.stable_region == REGION_B
    assert not pe.is_dirty


def test_cooperation_absorbs_writes_during_page_checkpoint(direct_system):
    s = direct_system
    hot_page_writes(s, page=2)
    end_epoch(s)
    first = 2 * s.config.blocks_per_page
    write_block(s, first + 3, b"dirty")
    settle(s.engine)
    end_epoch(s, wait_commit=False)          # page ckpt in flight
    pe = s.ctl.ptt.lookup(2)
    assert pe.ckpt_in_progress
    write_block(s, first + 3, b"coop!")      # must detour via the BTT
    entry = s.ctl.btt.lookup(first + 3)
    assert entry is not None and entry.coop_page == 2
    settle(s.engine, 2_000)   # let the DRAM temp write service
    assert s.ctl.visible_block_bytes(first + 3) == pad(b"coop!")
    run_until(s.engine,
              lambda: s.ctl.committed_meta.epoch >= 1)
    # Merged back into the page at commit; BTT entry gone.
    assert s.ctl.btt.lookup(first + 3) is None
    assert s.ctl.visible_block_bytes(first + 3) == pad(b"coop!")
    assert 3 in pe.dirty_active


def test_cold_page_demoted_after_hysteresis(direct_system):
    s = direct_system
    hot_page_writes(s, page=2)
    end_epoch(s)
    assert 2 in s.ctl.ptt
    # Several idle epochs: cold hysteresis then demotion + drop.
    for _ in range(8):
        write_block(s, 0, b"keepalive")   # other page traffic
        end_epoch(s)
    assert 2 not in s.ctl.ptt
    assert s.stats.pages_demoted >= 1
    # Data still visible (from NVM) after demotion.
    first = 2 * s.config.blocks_per_page
    assert s.ctl.visible_block_bytes(first + 5) == pad(b"h" + bytes([5]))


def test_gc_consolidates_idle_blocks_to_home():
    # Small BTT so the pressure threshold is reached quickly.
    cfg = small_test_config(epoch_cycles=MANUAL_EPOCHS, btt_entries=32)
    s = make_direct(cfg)
    for block in range(24):
        write_block(s, block, bytes([block]))
    end_epoch(s)
    # Entries now stable in region A.  Make them idle for several
    # epochs; GC (under pressure) consolidates them home and frees.
    for i in range(6):
        write_block(s, 100 + i, b"other")
        end_epoch(s)
    assert len(s.ctl.btt) < 24 + 6
    # Consolidated data must be readable from home.
    for block in range(24):
        assert s.ctl.visible_block_bytes(block) == pad(bytes([block]))


def advance_until(system, cond, limit=500_000_000):
    """Like run_until, but a crash is also a legal stop condition."""
    start = system.engine.now
    while not cond() and not system.ctl.crashed:
        if system.engine.pending_events == 0:
            break
        system.engine.run(until=system.engine.now + 100_000)
        if system.engine.now - start > limit:
            break


def test_crash_mid_first_page_checkpoint_recovers_block_data():
    """A crash during the page's *first* writeback (right after
    promotion) must recover the block-granularity data the previous
    epoch committed — the cross-scheme transition hazard of §3.4."""
    s = make_direct()
    hot_page_writes(s, page=2)
    end_epoch(s)                          # commits epoch 0, promotes
    assert 2 in s.ctl.ptt
    first = 2 * s.config.blocks_per_page
    write_block(s, first + 1, b"e1new")
    settle(s.engine)
    end_epoch(s, wait_commit=False)       # page checkpoint in flight
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.epoch == 0
    # Epoch 0 checkpointed the page's blocks via the BTT (the page was
    # promoted only *at* that commit), so recovery must read the
    # remapped block copies, never the half-written page region.
    for offset in range(s.config.blocks_per_page):
        assert recovered.visible_block(first + offset) == \
            pad(b"h" + bytes([offset]))


def test_crash_mid_demotion_recovers_a_committed_boundary():
    """Arm a crash on the demotion probe (the page is leaving the PTT
    and its data is being consolidated) and check the committed-prefix
    invariant still holds for the demoted page and the live traffic."""
    s = make_direct()
    hot_page_writes(s, page=2)
    end_epoch(s)
    first = 2 * s.config.blocks_per_page
    page_image = {first + offset: pad(b"h" + bytes([offset]))
                  for offset in range(s.config.blocks_per_page)}
    goldens = {0: dict(page_image)}
    armed = []

    def observer(kind, detail):
        if kind == "demote" and not armed:
            armed.append(s.engine.now)
            s.engine.schedule(0, s.ctl.crash)

    previous = probes.set_observer(observer)
    try:
        for index in range(10):           # idle epochs age the page
            if s.ctl.crashed:
                break
            data = b"keep" + bytes([index])
            write_block(s, 0, data)
            settle(s.engine)
            if s.ctl.crashed:
                break
            advance_until(s, lambda: s.ctl.epochs.phase is Phase.EXECUTING)
            if s.ctl.crashed:
                break
            epoch = s.ctl.epochs.active_epoch
            s.ctl.force_epoch_end("test")
            advance_until(s, lambda: s.ctl.committed_meta.epoch >= epoch)
            if s.ctl.committed_meta.epoch >= epoch:
                goldens[epoch] = {**page_image, 0: pad(data)}
            if s.ctl.crashed:
                break
    finally:
        probes.set_observer(previous)
    assert armed, "demotion never started"
    assert s.ctl.crashed
    recovered = s.ctl.recover()
    assert recovered.epoch in goldens
    golden = goldens[recovered.epoch]
    for block, expected in golden.items():
        assert recovered.visible_block(block) == expected, (
            f"block {block} mismatch after recovery to epoch "
            f"{recovered.epoch}")


def test_crashed_controller_rejects_scheme_traffic():
    s = make_direct()
    hot_page_writes(s, page=2)
    end_epoch(s)
    s.ctl.crash()
    first = 2 * s.config.blocks_per_page
    with pytest.raises(CrashedError):
        write_block(s, first + 1, b"late")
    with pytest.raises(CrashedError):
        s.ctl.force_epoch_end("test")


def test_btt_overflow_forces_epoch_end():
    cfg = small_test_config(epoch_cycles=MANUAL_EPOCHS, btt_entries=16)
    s = make_direct(cfg)
    for block in range(40):
        write_block(s, block, bytes([block]))
        settle(s.engine, 50_000)
    run_until(s.engine, lambda: s.stats.epochs_completed >= 1)
    assert s.stats.epochs_forced_by_overflow >= 1
    # Everything remains visible despite the churn.
    settle(s.engine)
    for block in range(40):
        assert s.ctl.visible_block_bytes(block) == pad(bytes([block]))
