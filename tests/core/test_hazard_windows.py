"""Directed tests for the protocol's trickiest hazard windows.

Each test here encodes one of the crash-safety arguments from
docs/PROTOCOL.md §6 as a regression test: GC consolidation racing a
rewrite, mid-epoch eviction shadows, promotion absorption, and
checkpoint-vs-demand same-slot ordering.
"""

from repro.config import small_test_config
from repro.core.metadata import GcState
from repro.core.regions import REGION_A, REGION_B

from ..conftest import (MANUAL_EPOCHS, end_epoch, make_direct, pad,
                        read_block, run_until, settle, write_block)


def small_btt_system(btt_entries=32):
    return make_direct(small_test_config(epoch_cycles=MANUAL_EPOCHS,
                                         btt_entries=btt_entries))


def force_gc_consolidation(system, victim_block):
    """Write enough blocks (plus the victim) to push the BTT past its
    GC pressure threshold, then idle the victim until GC selects it."""
    write_block(system, victim_block, b"victim-data")
    end_epoch(system)                       # victim stable in region A
    entry = system.ctl.btt.lookup(victim_block)
    assert entry.stable_region == REGION_A
    # Table pressure: 3/4 of capacity occupied.
    filler = range(100, 100 + (3 * system.ctl.btt.capacity) // 4)
    for round_index in range(3):            # victim idle >= 2 epochs
        for block in filler:
            write_block(system, block, bytes([round_index + 1]))
        end_epoch(system)
        entry = system.ctl.btt.lookup(victim_block)
        if entry is None or entry.gc_state is GcState.ISSUED:
            return entry
    return system.ctl.btt.lookup(victim_block)


def test_gc_consolidation_then_rewrite_is_crash_safe():
    s = small_btt_system()
    entry = force_gc_consolidation(s, victim_block=5)
    if entry is not None and entry.gc_state is GcState.ISSUED:
        # The hazard: rewrite the block while its consolidation copy to
        # home (region B) is still in flight.  The new write also
        # targets B; same-address FIFO must keep the new data last.
        write_block(s, 5, b"rewritten!!")
        assert entry.gc_state is GcState.NONE, "rewrite must cancel GC"
        end_epoch(s)
    else:
        # GC already dropped it; rewrite goes through a fresh entry.
        write_block(s, 5, b"rewritten!!")
        end_epoch(s)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.visible_block(5) == pad(b"rewritten!!")


def test_gc_dropped_block_reads_from_home():
    s = small_btt_system()
    force_gc_consolidation(s, victim_block=5)
    # A few more epochs to let the drop land.
    for _ in range(3):
        write_block(s, 200, b"churn")
        end_epoch(s)
    assert read_block(s, 5) == pad(b"victim-data")
    s.ctl.crash()
    assert s.ctl.recover().visible_block(5) == pad(b"victim-data")


def test_emergency_eviction_shadow_protects_region_a():
    """Fill a tiny BTT so mid-epoch eviction (with consolidation) runs;
    crash immediately after re-writing an evicted block."""
    s = small_btt_system(btt_entries=16)
    # Two epochs of writes so evictable entries have stable == A.
    for block in range(12):
        write_block(s, block, bytes([block + 1]))
    end_epoch(s)
    # Now flood with fresh blocks: evictions must kick in mid-epoch.
    for block in range(50, 80):
        write_block(s, block, bytes([block % 251]))
        settle(s.engine, 20_000)
    run_until(s.engine, lambda: not s.ctl._deferred_writes)
    # Rewrite one original block (may have been evicted+shadowed).
    write_block(s, 3, b"fresh")
    settle(s.engine, 50_000)
    s.ctl.validate()
    s.ctl.crash()
    recovered = s.ctl.recover()
    # Pre-crash committed value of block 3 must survive regardless of
    # the eviction/shadow interleaving (the rewrite was uncommitted).
    assert recovered.visible_block(3) == pad(bytes([4]))


def test_promotion_absorption_keeps_old_entries_until_durable():
    s = make_direct()
    first = 2 * s.config.blocks_per_page
    # Blocks gain BTT entries (and an NVM checkpoint in region A)...
    for offset in range(s.config.blocks_per_page):
        write_block(s, first + offset, bytes([offset + 1]))
    end_epoch(s)
    # ...then the page goes hot again and is promoted at the commit.
    for offset in range(s.config.blocks_per_page):
        write_block(s, first + offset, bytes([offset + 101]))
    end_epoch(s)
    assert 2 in s.ctl.ptt
    # Crash before the NEXT commit: the PTT entry is not yet in the
    # durable metadata, so recovery must fall back to the BTT entries.
    s.ctl.crash()
    recovered = s.ctl.recover()
    for offset in range(4):
        assert recovered.visible_block(first + offset) == \
            pad(bytes([offset + 101]))


def test_checkpoint_copy_sees_newest_flush_data():
    """A page checkpoint's DRAM reads must observe flush writes that
    are still queued (read-after-write forwarding end to end)."""
    s = make_direct()
    first = 2 * s.config.blocks_per_page
    for offset in range(s.config.blocks_per_page):
        write_block(s, first + offset, bytes([offset + 1]))
    end_epoch(s)                 # page promoted
    # Dirty the page and end the epoch immediately: the checkpoint's
    # page copy races the still-queued DRAM writes.
    for offset in range(s.config.blocks_per_page):
        write_block(s, first + offset, bytes([offset + 201 if offset < 55
                                              else offset]))
    end_epoch(s)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.visible_block(first) == pad(bytes([201]))
    assert recovered.visible_block(first + 5) == pad(bytes([206]))
