"""Unit tests for the translation tables (BTT/PTT)."""

from repro.core.btt import BlockTranslationTable
from repro.core.metadata import BlockEntry
from repro.core.ptt import PageTranslationTable
from repro.core.regions import REGION_A, REGION_B
from repro.core.table import TranslationTable


def test_insert_and_lookup():
    table = TranslationTable("t", 4, 8)
    assert table.insert(1, "a")
    assert table.get(1) == "a"
    assert 1 in table
    assert len(table) == 1


def test_capacity_enforced():
    table = TranslationTable("t", 2, 8)
    assert table.insert(1, "a")
    assert table.insert(2, "b")
    assert table.full
    assert not table.insert(3, "c")
    assert table.insert_failures == 1
    # Overwriting an existing index is always allowed.
    assert table.insert(1, "a2")


def test_remove_frees_space():
    table = TranslationTable("t", 1, 8)
    table.insert(1, "a")
    assert table.remove(1) == "a"
    assert table.remove(1) is None
    assert table.insert(2, "b")


def test_peak_occupancy():
    table = TranslationTable("t", 4, 8)
    for i in range(3):
        table.insert(i, i)
    table.remove(0)
    assert table.peak_occupancy == 3


def test_dirty_tracking_and_persist_bytes():
    table = TranslationTable("t", 8, 7)
    table.insert(1, "a")
    table.insert(2, "b")
    assert table.dirty_count() == 2
    assert table.persist_bytes(full=False) == 14
    assert table.persist_bytes(full=True) == 56
    table.clear_dirty()
    assert table.persist_bytes(full=False) == 0
    table.mark_dirty(1)
    assert table.dirty_count() == 1
    # Removals must be persisted too.
    table.remove(2)
    assert table.dirty_count() == 2


def test_btt_create_defaults_to_home():
    btt = BlockTranslationTable(4, 7)
    entry = btt.create(10)
    assert entry is not None
    assert entry.stable_region == REGION_B
    assert btt.lookup(10) is entry


def test_btt_create_with_region_hint():
    btt = BlockTranslationTable(4, 7)
    entry = btt.create(10, REGION_A)
    assert entry.stable_region == REGION_A


def test_btt_create_on_full_returns_none():
    btt = BlockTranslationTable(1, 7)
    assert btt.create(0) is not None
    assert btt.create(1) is None


def test_ptt_create():
    ptt = PageTranslationTable(4, 6)
    entry = ptt.create(3, dram_slot=7, stable_region=REGION_B)
    assert entry.page == 3
    assert entry.dram_slot == 7
    assert not entry.is_dirty


def test_block_entry_store_counter_saturates():
    entry = BlockEntry(block=0, stable_region=REGION_B)
    for _ in range(100):
        entry.bump_store(epoch=5)
    assert entry.store_count == 63          # 6-bit counter (Fig. 5)
    assert entry.last_write_epoch == 5


def test_snapshot_is_shallow_copy():
    table = TranslationTable("t", 4, 8)
    table.insert(1, "a")
    snap = table.snapshot()
    table.remove(1)
    assert snap == {1: "a"}
