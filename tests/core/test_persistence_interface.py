"""Tests for the §6 explicit-persistence interface (PERSIST barrier)."""

from repro.config import small_test_config
from repro.cpu.trace import TraceBuilder
from repro.harness.runner import run_workload
from repro.harness.systems import build_system
from repro.sim.request import Origin

from ..conftest import make_direct, pad, run_until, settle


def test_persist_barrier_direct_drive():
    s = make_direct()
    s.ctl.write_block(0, Origin.CPU, data=pad(b"durable"))
    fired = []
    s.ctl.persist_barrier(lambda: fired.append(s.engine.now))
    run_until(s.engine, lambda: bool(fired))
    # The barrier implies a committed checkpoint covering the write.
    assert s.ctl.committed_meta.epoch >= 0
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.visible_block(0) == pad(b"durable")


def test_persist_barrier_waits_for_commit_not_just_epoch_end():
    s = make_direct()
    s.ctl.write_block(0, Origin.CPU, data=pad(b"x"))
    fired = []
    s.ctl.persist_barrier(lambda: fired.append(True))
    # Immediately after requesting, the barrier must not have fired.
    assert not fired
    run_until(s.engine, lambda: bool(fired))
    assert s.ctl.committed_meta.epoch >= 0


def test_persist_op_in_cpu_trace():
    config = small_test_config(epoch_cycles=10 ** 10)  # only persists end epochs
    trace = (TraceBuilder()
             .write(0, 64).txn().persist()
             .write(64, 64).txn().persist()
             .build())
    result = run_workload("thynvm", trace, config)
    # Each persist forces (at least) one epoch; drain adds more.
    assert result.stats.epochs_completed >= 2
    assert result.stats.transactions == 2


def test_persist_makes_data_crash_safe_end_to_end():
    config = small_test_config(epoch_cycles=10 ** 10)
    system = build_system("thynvm", config)
    trace = (TraceBuilder().write(128, 64).persist().build())
    finished = []
    system.memsys.start()
    system.core.run_trace(iter(trace), lambda: finished.append(1))
    run_until(system.engine, lambda: bool(finished))
    system.memsys.stop()   # park the epoch timer chain
    assert finished, "persist barrier never released the core"
    system.memsys.crash()
    recovered = system.memsys.recover()
    assert recovered.epoch >= 0


def test_persist_on_ideal_system_is_free():
    config = small_test_config()
    trace = (TraceBuilder().write(0, 64).persist().write(64, 64).build())
    result = run_workload("ideal_dram", trace, config)
    assert result.stats.epochs_completed == 0


def test_persist_on_stop_the_world_baselines():
    config = small_test_config(epoch_cycles=10 ** 10)
    for name in ("journal", "shadow"):
        trace = (TraceBuilder().write(0, 64).persist().build())
        result = run_workload(name, trace, config)
        assert result.stats.epochs_completed >= 1, name
