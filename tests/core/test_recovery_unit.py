"""Unit tests for the recovery module in isolation."""

import pytest

from repro.config import small_test_config
from repro.core.recovery import MetaSnapshot, RecoveredState, recover
from repro.core.regions import REGION_A, REGION_B, HardwareLayout
from repro.errors import RecoveryError
from repro.mem.controller import DeviceKind, MemoryController
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector


@pytest.fixture
def setup():
    config = small_test_config()
    engine = Engine()
    memctrl = MemoryController(engine, config, StatsCollector())
    layout = HardwareLayout(config)
    return config, memctrl, layout


def test_recover_requires_committed_meta(setup):
    config, memctrl, layout = setup
    with pytest.raises(RecoveryError):
        recover(config, layout, memctrl, None)


def test_untracked_blocks_resolve_to_home(setup):
    config, memctrl, layout = setup
    nvm = memctrl.functional_store(DeviceKind.NVM)
    nvm.write(layout.home_block_addr(7), b"h" * 64)
    state = recover(config, layout, memctrl, MetaSnapshot(epoch=0))
    assert state.visible_block(7) == b"h" * 64
    assert state.visible_block(8) == bytes(64)


def test_block_entries_resolve_to_their_region(setup):
    config, memctrl, layout = setup
    nvm = memctrl.functional_store(DeviceKind.NVM)
    nvm.write(layout.region_block_addr(REGION_A, 3), b"a" * 64)
    nvm.write(layout.region_block_addr(REGION_B, 3), b"b" * 64)
    meta = MetaSnapshot(epoch=2, block_regions={3: REGION_A})
    state = recover(config, layout, memctrl, meta)
    assert state.visible_block(3) == b"a" * 64


def test_page_entries_override_block_entries(setup):
    config, memctrl, layout = setup
    nvm = memctrl.functional_store(DeviceKind.NVM)
    page, block = 2, 2 * config.blocks_per_page
    nvm.write(layout.region_page_addr(REGION_A, page), b"p" * 64)
    meta = MetaSnapshot(epoch=1,
                        block_regions={block: REGION_B},
                        page_regions={page: (REGION_A, 0)})
    state = recover(config, layout, memctrl, meta)
    assert state.visible_block(block) == b"p" * 64


def test_recovery_restores_working_region(setup):
    config, memctrl, layout = setup
    nvm = memctrl.functional_store(DeviceKind.NVM)
    dram = memctrl.functional_store(DeviceKind.DRAM)
    page = 1
    base = layout.region_page_addr(REGION_B, page)
    for offset in range(config.blocks_per_page):
        nvm.write(base + offset * 64, bytes([offset]) * 64)
    meta = MetaSnapshot(epoch=0, page_regions={page: (REGION_B, 3)})
    recover(config, layout, memctrl, meta)
    slot_base = layout.page_slot_addr(3)
    for offset in range(config.blocks_per_page):
        assert dram.read(slot_base + offset * 64) == bytes([offset]) * 64


def test_snapshot_physical(setup):
    config, memctrl, layout = setup
    nvm = memctrl.functional_store(DeviceKind.NVM)
    nvm.write(layout.home_block_addr(0), b"x" * 64)
    state = recover(config, layout, memctrl, MetaSnapshot(epoch=0))
    image = state.snapshot_physical(4)
    assert image[0] == b"x" * 64
    assert image[3] == bytes(64)
