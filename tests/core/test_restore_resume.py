"""Resume-after-recovery tests: operation continues across power cycles.

The strongest consistency exercise in the suite: run epochs, crash,
recover, *resume on the same NVM*, keep writing, crash again — the
recovered state must always be exactly the newest committed boundary
of whichever power cycle it belongs to.
"""

import random

from repro.core.epoch import Phase

from ..conftest import (end_epoch, make_direct, pad, read_block, run_until,
                        settle, write_block)

BLOCKS = 32


def crash_and_resume(system):
    system.ctl.crash()
    recovered = system.ctl.recover()
    system.ctl.restore_from(recovered)
    return recovered


def test_resume_preserves_data(direct_system):
    s = direct_system
    write_block(s, 3, b"before")
    end_epoch(s)
    recovered = crash_and_resume(s)
    assert recovered.epoch == 0
    assert read_block(s, 3) == pad(b"before")


def test_resume_continues_epoch_numbering(direct_system):
    s = direct_system
    write_block(s, 0, b"a")
    end_epoch(s)
    write_block(s, 0, b"b")
    end_epoch(s)
    crash_and_resume(s)
    assert s.ctl.epochs.active_epoch == 2
    write_block(s, 0, b"c")
    end_epoch(s)
    assert s.ctl.committed_meta.epoch == 2
    assert read_block(s, 0) == pad(b"c")


def test_writes_after_resume_are_crash_safe(direct_system):
    s = direct_system
    write_block(s, 1, b"gen0")
    end_epoch(s)
    crash_and_resume(s)
    write_block(s, 1, b"gen1")
    write_block(s, 2, b"new")
    end_epoch(s)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.visible_block(1) == pad(b"gen1")
    assert recovered.visible_block(2) == pad(b"new")


def test_uncommitted_work_after_resume_rolls_back(direct_system):
    s = direct_system
    write_block(s, 1, b"committed")
    end_epoch(s)
    crash_and_resume(s)
    write_block(s, 1, b"doomed")
    settle(s.engine, 500)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.visible_block(1) == pad(b"committed")


def test_resume_with_promoted_pages(direct_system):
    s = direct_system
    first = 2 * s.config.blocks_per_page
    for offset in range(s.config.blocks_per_page):
        write_block(s, first + offset, bytes([offset + 1]))
    end_epoch(s)
    end_epoch(s)           # page durable under the PTT
    assert 2 in s.ctl.ptt
    crash_and_resume(s)
    assert 2 in s.ctl.ptt, "resumed PTT should retain the page"
    assert read_block(s, first + 5) == pad(bytes([6]))
    # Page continues to absorb writes after resume.
    write_block(s, first + 5, b"post-resume")
    end_epoch(s)
    assert read_block(s, first + 5) == pad(b"post-resume")


def test_many_power_cycles_random_workload():
    rng = random.Random(31)
    s = make_direct()
    shadow = {}
    committed = {}
    for cycle in range(5):
        for _ in range(rng.randrange(2, 5)):
            for _ in range(rng.randrange(3, 10)):
                block = rng.randrange(BLOCKS)
                data = pad(f"c{cycle}b{block}x{rng.randrange(99)}".encode())
                write_block(s, block, data)
                shadow[block] = data
            run_until(s.engine,
                      lambda: s.ctl.epochs.phase is Phase.EXECUTING)
            s.ctl.force_epoch_end("test")
            epoch = s.ctl.epochs.active_epoch - 1
            run_until(s.engine,
                      lambda e=epoch: s.ctl.committed_meta.epoch >= e)
            committed = dict(shadow)
        # Random extra writes that will be lost at the crash.
        for _ in range(rng.randrange(0, 6)):
            block = rng.randrange(BLOCKS)
            write_block(s, block, pad(b"volatile"))
        settle(s.engine, rng.randrange(2_000))
        s.ctl.crash()
        recovered = s.ctl.recover()
        for block in range(BLOCKS):
            assert recovered.visible_block(block) == committed.get(
                block, bytes(64)), f"cycle {cycle}, block {block}"
        shadow = dict(committed)
        s.ctl.restore_from(recovered)
        s.ctl.validate()
