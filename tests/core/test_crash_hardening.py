"""The hardened crash API: dead controllers refuse work, loudly.

After ``crash()``, every *public* entry point raises
:class:`~repro.errors.CrashedError` — silent no-ops would let a test
harness (or the fuzzer) keep driving a dead controller and mistake the
absence of effects for consistency.  Internal event callbacks still
return silently: they model in-flight work cut off by power loss.
"""

from types import SimpleNamespace

import pytest

from repro.baselines.journaling import JournalingController
from repro.baselines.shadow import ShadowPagingController
from repro.config import small_test_config
from repro.core.controller import ThyNVMController
from repro.errors import CrashedError
from repro.mem.controller import MemoryController
from repro.sim.engine import Engine
from repro.sim.request import Origin
from repro.stats.collector import StatsCollector

from ..conftest import MANUAL_EPOCHS, pad, settle

CONTROLLERS = {
    "thynvm": ThyNVMController,
    "journal": JournalingController,
    "shadow": ShadowPagingController,
}


def make_system(kind):
    config = small_test_config(epoch_cycles=MANUAL_EPOCHS)
    engine = Engine()
    stats = StatsCollector(config.block_bytes)
    memctrl = MemoryController(engine, config, stats)
    controller = CONTROLLERS[kind](engine, config, memctrl, stats)
    controller.start()
    return SimpleNamespace(engine=engine, config=config, stats=stats,
                           memctrl=memctrl, ctl=controller)


@pytest.fixture(params=sorted(CONTROLLERS))
def crashed_system(request):
    system = make_system(request.param)
    system.ctl.write_block(0, Origin.CPU, data=pad(b"before"))
    settle(system.engine)
    system.ctl.crash()
    return system


def test_crashed_flag_is_exposed(crashed_system):
    assert crashed_system.ctl.crashed is True


def test_second_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.crash()


def test_write_after_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.write_block(64, Origin.CPU, data=pad(b"late"))


def test_read_after_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.read_block(0, Origin.CPU, lambda req: None)


def test_persist_barrier_after_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.persist_barrier(lambda: None)


def test_force_epoch_end_after_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.force_epoch_end("test")


def test_drain_after_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.drain(lambda: None)


def test_start_after_crash_raises(crashed_system):
    with pytest.raises(CrashedError):
        crashed_system.ctl.start()


def test_in_flight_events_do_not_raise(crashed_system):
    """Events already scheduled before the crash must drain without
    raising — they are the in-flight work power loss cut off."""
    settle(crashed_system.engine)
    assert crashed_system.ctl.crashed


def test_live_controller_unaffected():
    system = make_system("thynvm")
    system.ctl.write_block(0, Origin.CPU, data=pad(b"fine"))
    settle(system.engine)
    assert not system.ctl.crashed
    assert system.ctl.visible_block_bytes(0) == pad(b"fine")
