"""Unit tests for the scheme coordinator's selection policies, plus
multi-controller crash isolation (each controller has its own
coordinator; crashing one must not disturb another's scheme state)."""

from types import SimpleNamespace

import pytest

from repro.config import small_test_config
from repro.core.btt import BlockTranslationTable
from repro.core.controller import ThyNVMController
from repro.core.coordinator import SchemeCoordinator
from repro.core.metadata import GcState, PageEntry
from repro.core.ptt import PageTranslationTable
from repro.core.regions import REGION_A, REGION_B
from repro.errors import CrashedError
from repro.mem.controller import MemoryController
from repro.sim.engine import Engine
from repro.stats.collector import StatsCollector

from ..conftest import MANUAL_EPOCHS, end_epoch, pad, settle, write_block


def make_coordinator(**kwargs):
    return SchemeCoordinator(promote_threshold=22, demote_threshold=16,
                             **kwargs)


def test_store_counting_and_rollover():
    coordinator = make_coordinator()
    for _ in range(5):
        coordinator.note_store(3)
    coordinator.note_store(4)
    counts = coordinator.epoch_rollover()
    assert counts == {3: 5, 4: 1}
    assert coordinator.epoch_rollover() == {}


def test_promotion_selection_hottest_first():
    coordinator = make_coordinator()
    ptt = PageTranslationTable(16, 6)
    counts = {1: 30, 2: 25, 3: 10, 4: 50}
    selected = coordinator.select_promotions(counts, ptt, slots_free=2)
    assert selected == [4, 1]


def test_promotion_skips_existing_and_respects_budget():
    coordinator = make_coordinator()
    coordinator.promote_per_commit = 1
    ptt = PageTranslationTable(16, 6)
    ptt.create(4, dram_slot=0, stable_region=REGION_B)
    counts = {4: 50, 1: 30, 2: 40}
    selected = coordinator.select_promotions(counts, ptt, slots_free=8)
    assert selected == [2]


def test_demotion_requires_consecutive_cold_epochs():
    coordinator = make_coordinator(demote_hysteresis=3)
    ptt = PageTranslationTable(16, 6)
    entry = ptt.create(7, dram_slot=1, stable_region=REGION_B)
    for round_index in range(2):
        assert coordinator.select_demotions({}, ptt) == []
    assert coordinator.select_demotions({}, ptt) == [entry]


def test_hot_epoch_resets_cold_streak():
    coordinator = make_coordinator(demote_hysteresis=2)
    ptt = PageTranslationTable(16, 6)
    entry = ptt.create(7, dram_slot=1, stable_region=REGION_B)
    assert coordinator.select_demotions({}, ptt) == []
    assert coordinator.select_demotions({7: 30}, ptt) == []   # hot again
    assert coordinator.select_demotions({}, ptt) == []
    assert coordinator.select_demotions({}, ptt) == [entry]


def test_dirty_pages_not_demoted():
    coordinator = make_coordinator(demote_hysteresis=1)
    ptt = PageTranslationTable(16, 6)
    entry = ptt.create(7, dram_slot=1, stable_region=REGION_B)
    entry.dirty_active.add(0)
    assert coordinator.select_demotions({}, ptt) == []


def test_gc_selects_only_idle_entries():
    coordinator = make_coordinator()
    btt = BlockTranslationTable(64, 7)
    idle = btt.create(1)
    idle.last_write_epoch = 0
    busy = btt.create(2)
    busy.pending_epoch = 5
    busy.last_write_epoch = 5
    recent = btt.create(3)
    recent.last_write_epoch = 4
    selected = coordinator.select_gc(btt, committed_epoch=5)
    assert selected == [idle]


def test_gc_budget():
    coordinator = make_coordinator(gc_per_commit=3)
    btt = BlockTranslationTable(64, 7)
    for block in range(10):
        entry = btt.create(block)
        entry.last_write_epoch = 0
    assert len(coordinator.select_gc(btt, committed_epoch=9)) == 3


def test_instant_removals_split_by_region():
    from repro.core.metadata import BlockEntry
    entries = [BlockEntry(block=0, stable_region=REGION_B),
               BlockEntry(block=1, stable_region=REGION_A)]
    instant = SchemeCoordinator.instant_removals(entries)
    assert [e.block for e in instant] == [0]


# ---------------------------------------------------------------------
# Multi-controller crash isolation
# ---------------------------------------------------------------------

def make_controller_pair():
    """Two independent ThyNVM controllers sharing one simulation
    engine — the multi-memory-controller configuration — each with its
    own memory controller, stats and (inside the controller) its own
    scheme coordinator."""
    engine = Engine()
    systems = []
    for _ in range(2):
        config = small_test_config(epoch_cycles=MANUAL_EPOCHS)
        stats = StatsCollector(config.block_bytes)
        memctrl = MemoryController(engine, config, stats)
        controller = ThyNVMController(engine, config, memctrl, stats)
        controller.start()
        systems.append(SimpleNamespace(engine=engine, config=config,
                                       stats=stats, memctrl=memctrl,
                                       ctl=controller))
    return systems


def hot_page(system, page, tag):
    config = system.config
    first = page * config.blocks_per_page
    for offset in range(config.blocks_per_page):
        write_block(system, first + offset, tag + bytes([offset]))
    settle(system.engine)


def test_crashing_one_controller_leaves_the_other_running():
    a, b = make_controller_pair()
    hot_page(a, 2, b"a")
    hot_page(b, 2, b"b")
    end_epoch(a)
    end_epoch(b)
    assert 2 in a.ctl.ptt and 2 in b.ctl.ptt       # both promoted
    first = 2 * a.config.blocks_per_page

    # Dirty the promoted page on both; start A's page checkpoint and
    # crash it mid-flight.  B shares the engine but nothing else.
    write_block(a, first + 1, b"a-e1")
    write_block(b, first + 1, b"b-e1")
    settle(a.engine)
    end_epoch(a, wait_commit=False)
    a.ctl.crash()

    # B's scheme transition proceeds to commit, unaffected.
    end_epoch(b)
    assert b.ctl.committed_meta.epoch >= 1
    assert 2 in b.ctl.ptt
    assert b.ctl.visible_block_bytes(first + 1) == pad(b"b-e1")
    write_block(b, first + 3, b"b-e2")             # still accepts traffic
    settle(b.engine)

    # A is dead to traffic but recovers its committed boundary.
    with pytest.raises(CrashedError):
        write_block(a, first + 1, b"late")
    recovered = a.ctl.recover()
    assert recovered.epoch == 0
    for offset in range(a.config.blocks_per_page):
        assert recovered.visible_block(first + offset) == \
            pad(b"a" + bytes([offset]))


def test_both_controllers_recover_after_staggered_crashes():
    a, b = make_controller_pair()
    for block, (sys_, tag) in enumerate(((a, b"x"), (b, b"y"))):
        for offset in range(6):
            write_block(sys_, block * 8 + offset, tag + bytes([offset]))
    settle(a.engine)
    end_epoch(a)
    end_epoch(b)

    # Crash A mid-checkpoint of epoch 1, B after its commit.
    write_block(a, 0, b"x-new")
    write_block(b, 8, b"y-new")
    settle(a.engine)
    end_epoch(a, wait_commit=False)
    a.ctl.crash()
    end_epoch(b)
    b.ctl.crash()

    rec_a = a.ctl.recover()
    rec_b = b.ctl.recover()
    assert rec_a.epoch == 0                     # epoch 1 never committed
    assert rec_a.visible_block(0) == pad(b"x" + bytes([0]))
    assert rec_b.epoch == 1                     # committed before crash
    assert rec_b.visible_block(8) == pad(b"y-new")
