"""Unit tests for the scheme coordinator's selection policies."""

from repro.core.btt import BlockTranslationTable
from repro.core.coordinator import SchemeCoordinator
from repro.core.metadata import GcState, PageEntry
from repro.core.ptt import PageTranslationTable
from repro.core.regions import REGION_A, REGION_B


def make_coordinator(**kwargs):
    return SchemeCoordinator(promote_threshold=22, demote_threshold=16,
                             **kwargs)


def test_store_counting_and_rollover():
    coordinator = make_coordinator()
    for _ in range(5):
        coordinator.note_store(3)
    coordinator.note_store(4)
    counts = coordinator.epoch_rollover()
    assert counts == {3: 5, 4: 1}
    assert coordinator.epoch_rollover() == {}


def test_promotion_selection_hottest_first():
    coordinator = make_coordinator()
    ptt = PageTranslationTable(16, 6)
    counts = {1: 30, 2: 25, 3: 10, 4: 50}
    selected = coordinator.select_promotions(counts, ptt, slots_free=2)
    assert selected == [4, 1]


def test_promotion_skips_existing_and_respects_budget():
    coordinator = make_coordinator()
    coordinator.promote_per_commit = 1
    ptt = PageTranslationTable(16, 6)
    ptt.create(4, dram_slot=0, stable_region=REGION_B)
    counts = {4: 50, 1: 30, 2: 40}
    selected = coordinator.select_promotions(counts, ptt, slots_free=8)
    assert selected == [2]


def test_demotion_requires_consecutive_cold_epochs():
    coordinator = make_coordinator(demote_hysteresis=3)
    ptt = PageTranslationTable(16, 6)
    entry = ptt.create(7, dram_slot=1, stable_region=REGION_B)
    for round_index in range(2):
        assert coordinator.select_demotions({}, ptt) == []
    assert coordinator.select_demotions({}, ptt) == [entry]


def test_hot_epoch_resets_cold_streak():
    coordinator = make_coordinator(demote_hysteresis=2)
    ptt = PageTranslationTable(16, 6)
    entry = ptt.create(7, dram_slot=1, stable_region=REGION_B)
    assert coordinator.select_demotions({}, ptt) == []
    assert coordinator.select_demotions({7: 30}, ptt) == []   # hot again
    assert coordinator.select_demotions({}, ptt) == []
    assert coordinator.select_demotions({}, ptt) == [entry]


def test_dirty_pages_not_demoted():
    coordinator = make_coordinator(demote_hysteresis=1)
    ptt = PageTranslationTable(16, 6)
    entry = ptt.create(7, dram_slot=1, stable_region=REGION_B)
    entry.dirty_active.add(0)
    assert coordinator.select_demotions({}, ptt) == []


def test_gc_selects_only_idle_entries():
    coordinator = make_coordinator()
    btt = BlockTranslationTable(64, 7)
    idle = btt.create(1)
    idle.last_write_epoch = 0
    busy = btt.create(2)
    busy.pending_epoch = 5
    busy.last_write_epoch = 5
    recent = btt.create(3)
    recent.last_write_epoch = 4
    selected = coordinator.select_gc(btt, committed_epoch=5)
    assert selected == [idle]


def test_gc_budget():
    coordinator = make_coordinator(gc_per_commit=3)
    btt = BlockTranslationTable(64, 7)
    for block in range(10):
        entry = btt.create(block)
        entry.last_write_epoch = 0
    assert len(coordinator.select_gc(btt, committed_epoch=9)) == 3


def test_instant_removals_split_by_region():
    from repro.core.metadata import BlockEntry
    entries = [BlockEntry(block=0, stable_region=REGION_B),
               BlockEntry(block=1, stable_region=REGION_A)]
    instant = SchemeCoordinator.instant_removals(entries)
    assert [e.block for e in instant] == [0]
