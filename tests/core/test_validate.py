"""Tests for the controller's invariant validator."""

import pytest

from repro.core.metadata import BlockEntry
from repro.core.regions import REGION_B
from repro.errors import ProtocolError

from ..conftest import end_epoch, make_direct, settle, write_block


def test_validate_passes_through_normal_operation(direct_system):
    s = direct_system
    s.ctl.validate()
    for block in range(10):
        write_block(s, block, bytes([block]))
    s.ctl.validate()
    end_epoch(s, wait_commit=False)
    s.ctl.validate()
    end_epoch(s)
    s.ctl.validate()


def test_validate_catches_orphan_temp_index(direct_system):
    s = direct_system
    s.ctl._temp_by_epoch[s.ctl.epochs.active_epoch] = {42}
    with pytest.raises(ProtocolError):
        s.ctl.validate()


def test_validate_catches_untracked_temp_entry(direct_system):
    s = direct_system
    entry = s.ctl.btt.create(7)
    entry.temp_epochs.add(s.ctl.epochs.active_epoch)   # not in the index
    with pytest.raises(ProtocolError):
        s.ctl.validate()


def test_validate_catches_slot_sharing(direct_system):
    s = direct_system
    s.ctl.ptt.create(1, dram_slot=3, stable_region=REGION_B)
    s.ctl.ptt.create(2, dram_slot=3, stable_region=REGION_B)
    with pytest.raises(ProtocolError):
        s.ctl.validate()


def test_validate_catches_coop_for_untracked_page(direct_system):
    s = direct_system
    entry = s.ctl.btt.create(9)
    entry.coop_page = 5
    with pytest.raises(ProtocolError):
        s.ctl.validate()


def test_validate_catches_dirty_index_for_untracked_page(direct_system):
    s = direct_system
    s.ctl._dirty_pages.add(12)
    with pytest.raises(ProtocolError):
        s.ctl.validate()
