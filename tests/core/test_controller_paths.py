"""Functional tests of the ThyNVM controller's read/write steering.

Driven directly (no CPU/caches) against the small functional config;
epochs are ended manually.  These tests pin down the Figure 6(a)
control flow: where each store lands, what each load sees, and how
versions flip at commits.
"""

from repro.core.epoch import Phase
from repro.core.regions import REGION_A, REGION_B, other_region
from repro.core.versions import ProtocolState, classify_block_state
from repro.mem.controller import DeviceKind
from repro.sim.request import Origin

from ..conftest import (end_epoch, make_direct, pad, read_block, run_until,
                        settle, write_block)


def visible(system, block):
    return system.ctl.visible_block_bytes(block)


def nvm_at(system, addr):
    return system.memctrl.functional_store(DeviceKind.NVM).read(addr)


def test_first_write_goes_to_complement_of_home(direct_system):
    s = direct_system
    write_block(s, 5, b"v1")
    settle(s.engine)
    entry = s.ctl.btt.lookup(5)
    assert entry is not None
    assert entry.stable_region == REGION_B
    assert entry.pending_epoch == s.ctl.epochs.active_epoch
    # The working copy sits in region A; home still has the old value.
    assert nvm_at(s, s.ctl.layout.region_block_addr(REGION_A, 5)) == pad(b"v1")
    assert nvm_at(s, s.ctl.layout.home_block_addr(5)) == bytes(64)


def test_read_sees_working_copy(direct_system):
    s = direct_system
    write_block(s, 7, b"new")
    assert read_block(s, 7) == pad(b"new")


def test_read_untracked_block_from_home(direct_system):
    s = direct_system
    assert read_block(s, 9) == bytes(64)


def test_commit_flips_stable_region(direct_system):
    s = direct_system
    write_block(s, 3, b"epoch0")
    end_epoch(s)
    entry = s.ctl.btt.lookup(3)
    assert entry.pending_epoch is None
    assert entry.stable_region == REGION_A
    assert visible(s, 3) == pad(b"epoch0")


def test_writes_coalesce_within_epoch(direct_system):
    s = direct_system
    write_block(s, 3, b"a")
    write_block(s, 3, b"b")
    settle(s.engine)
    assert visible(s, 3) == pad(b"b")
    end_epoch(s)
    assert visible(s, 3) == pad(b"b")


def test_ping_pong_across_epochs(direct_system):
    s = direct_system
    write_block(s, 3, b"e0")
    end_epoch(s)
    write_block(s, 3, b"e1")
    end_epoch(s)
    entry = s.ctl.btt.lookup(3)
    assert entry.stable_region == REGION_B
    assert visible(s, 3) == pad(b"e1")
    # Both region copies exist: A holds epoch 0's, B epoch 1's.
    assert nvm_at(s, s.ctl.layout.region_block_addr(REGION_A, 3)) == pad(b"e0")
    assert nvm_at(s, s.ctl.layout.region_block_addr(REGION_B, 3)) == pad(b"e1")


def test_write_during_own_checkpoint_buffers_in_dram(direct_system):
    s = direct_system
    ctl, engine = s.ctl, s.engine
    write_block(s, 3, b"e0")
    # End the epoch but do NOT wait for the commit.
    end_epoch(s, wait_commit=False)
    assert ctl.epochs.ckpt_epoch == 0
    # While block 3's own copy is being checkpointed, a new write to it
    # must detour to a DRAM temp slot (Fig. 6(a) "still ckpting?").
    write_block(s, 3, b"e1")
    entry = ctl.btt.lookup(3)
    assert ctl.epochs.active_epoch in entry.temp_epochs
    state = classify_block_state(entry, ctl.epochs.active_epoch,
                                 ctl.epochs.ckpt_epoch)
    assert state in (ProtocolState.OVERLAPPED,
                     ProtocolState.DRAM_TEMP)
    settle(engine, 2_000)   # let the DRAM temp write service
    assert visible(s, 3) == pad(b"e1")
    run_until(engine, lambda: ctl.committed_meta.epoch >= 0)
    # The committed checkpoint must hold epoch 0's value.
    assert ctl.committed_meta.block_regions[3] == REGION_A


def test_write_to_other_block_during_checkpoint_goes_direct(direct_system):
    s = direct_system
    ctl = s.ctl
    write_block(s, 3, b"e0")
    end_epoch(s, wait_commit=False)
    # Block 8 is not part of the in-flight checkpoint: NVM-direct.
    write_block(s, 8, b"direct")
    entry = ctl.btt.lookup(8)
    assert not entry.temp_epochs
    assert entry.pending_epoch == ctl.epochs.active_epoch


def test_temp_copy_checkpointed_next_epoch(direct_system):
    s = direct_system
    write_block(s, 3, b"e0")
    end_epoch(s, wait_commit=False)
    write_block(s, 3, b"e1")           # DRAM temp
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 0)
    end_epoch(s)                        # checkpoints the temp copy
    entry = s.ctl.btt.lookup(3)
    assert not entry.temp_epochs
    assert entry.pending_epoch is None
    assert visible(s, 3) == pad(b"e1")
    assert s.ctl.committed_meta.block_regions[3] == REGION_B


def test_flush_origin_writes_take_normal_path(direct_system):
    s = direct_system
    s.ctl.write_block(5 * 64, Origin.FLUSH, data=pad(b"flush"))
    settle(s.engine)
    assert visible(s, 5) == pad(b"flush")


def test_metadata_bytes_in_use_tracks_entries(direct_system):
    s = direct_system
    base = s.ctl.metadata_bytes_in_use()
    for block in range(10):
        write_block(s, block, b"x")
    settle(s.engine)
    assert s.ctl.metadata_bytes_in_use() == base + 10 * s.ctl.btt.entry_bytes


def test_epoch_phases_progress(direct_system):
    s = direct_system
    assert s.ctl.epochs.phase is Phase.EXECUTING
    write_block(s, 1, b"x")
    epoch = end_epoch(s)
    assert epoch == 0
    assert s.ctl.epochs.active_epoch == 1
    assert s.stats.epochs_completed == 1
