"""Unit tests for the hardware address-space layout."""

import pytest

from repro.config import small_test_config
from repro.core.regions import (REGION_A, REGION_B, HardwareLayout,
                                other_region)
from repro.errors import SimulationError


@pytest.fixture
def layout():
    return HardwareLayout(small_test_config())


def test_other_region():
    assert other_region(REGION_A) == REGION_B
    assert other_region(REGION_B) == REGION_A


def test_home_is_region_b(layout):
    for block in (0, 1, 100):
        assert layout.home_block_addr(block) == layout.region_block_addr(
            REGION_B, block)


def test_regions_do_not_overlap(layout):
    cfg = layout.config
    last_b = layout.region_block_addr(REGION_B, cfg.physical_blocks - 1)
    first_a = layout.region_block_addr(REGION_A, 0)
    assert last_b + cfg.block_bytes <= first_a
    last_a = layout.region_block_addr(REGION_A, cfg.physical_blocks - 1)
    assert last_a + cfg.block_bytes <= layout.backup_base


def test_backup_subregions_do_not_overlap(layout):
    assert layout.btt_backup_offset >= layout.config.cpu_state_bytes
    btt_end = (layout.btt_backup_offset
               + layout.btt_backup_blocks * layout.config.block_bytes)
    assert layout.ptt_backup_offset >= btt_end
    ptt_end = (layout.ptt_backup_offset
               + layout.ptt_backup_blocks * layout.config.block_bytes)
    assert layout.commit_record_addr >= layout.backup_base + ptt_end


def test_page_addresses_consistent_with_blocks(layout):
    cfg = layout.config
    page = 3
    page_addr = layout.region_page_addr(REGION_A, page)
    first_block = page * cfg.blocks_per_page
    assert page_addr == layout.region_block_addr(REGION_A, first_block)


def test_temp_slots_differ_by_parity(layout):
    a = layout.temp_block_addr(5, epoch=0)
    b = layout.temp_block_addr(5, epoch=1)
    c = layout.temp_block_addr(5, epoch=2)
    assert a != b
    assert a == c   # parity wraps


def test_temp_slots_unique_per_block(layout):
    seen = set()
    for block in range(64):
        for epoch in (0, 1):
            addr = layout.temp_block_addr(block, epoch)
            assert addr not in seen
            assert addr >= layout.temp_base
            seen.add(addr)


def test_slot_allocation_and_release(layout):
    total = layout.slots_total
    slots = [layout.allocate_slot() for _ in range(total)]
    assert None not in slots
    assert len(set(slots)) == total
    assert layout.allocate_slot() is None
    layout.release_slot(slots[0])
    assert layout.allocate_slot() == slots[0]


def test_slot_addresses_within_working_region(layout):
    cfg = layout.config
    slot = layout.allocate_slot()
    addr = layout.page_slot_addr(slot)
    assert 0 <= addr < cfg.dram_bytes
    assert layout.slot_block_addr(slot, 0) == addr
    assert (layout.slot_block_addr(slot, cfg.blocks_per_page - 1)
            == addr + cfg.page_bytes - cfg.block_bytes)


def test_invalid_slot_rejected(layout):
    with pytest.raises(SimulationError):
        layout.page_slot_addr(layout.slots_total)
    with pytest.raises(SimulationError):
        layout.release_slot(-1)


def test_backup_addr_bounds(layout):
    layout.backup_addr(0)
    with pytest.raises(SimulationError):
        layout.backup_addr(layout.backup_bytes)
