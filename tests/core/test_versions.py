"""Unit tests for the protocol state machine."""

import pytest

from repro.core.metadata import BlockEntry
from repro.core.versions import (ALLOWED_TRANSITIONS, ProtocolState,
                                 classify_block_state, validate_transition)
from repro.core.regions import REGION_B
from repro.errors import ProtocolError


def entry(**kwargs):
    return BlockEntry(block=0, stable_region=REGION_B, **kwargs)


def test_untracked_is_home():
    assert classify_block_state(None, 5, None) is ProtocolState.HOME


def test_tracked_idle_is_clean():
    assert classify_block_state(entry(), 5, None) is ProtocolState.CLEAN


def test_pending_in_active_epoch_is_nvm_working():
    e = entry(pending_epoch=5)
    assert classify_block_state(e, 5, None) is ProtocolState.NVM_WORKING


def test_pending_under_checkpoint():
    e = entry(pending_epoch=4)
    assert classify_block_state(e, 5, 4) is ProtocolState.NVM_CHECKPOINTING


def test_temp_in_active_epoch():
    e = entry(temp_epochs={5})
    assert classify_block_state(e, 5, 4) is ProtocolState.DRAM_TEMP


def test_temp_under_checkpoint():
    e = entry(temp_epochs={4})
    assert classify_block_state(e, 5, 4) is ProtocolState.DRAM_CHECKPOINTING


def test_overlapped():
    e = entry(temp_epochs={4, 5})
    assert classify_block_state(e, 5, 4) is ProtocolState.OVERLAPPED
    e2 = entry(pending_epoch=4, temp_epochs={5})
    assert classify_block_state(e2, 5, 4) is ProtocolState.OVERLAPPED


def test_stale_working_copy_rejected():
    e = entry(pending_epoch=2)
    with pytest.raises(ProtocolError):
        classify_block_state(e, 5, None)


def test_validate_self_loop_allowed():
    validate_transition(ProtocolState.CLEAN, ProtocolState.CLEAN)


def test_validate_legal_transition():
    validate_transition(ProtocolState.HOME, ProtocolState.NVM_WORKING)
    validate_transition(ProtocolState.NVM_CHECKPOINTING, ProtocolState.CLEAN)


def test_validate_illegal_transition():
    with pytest.raises(ProtocolError):
        validate_transition(ProtocolState.CLEAN, ProtocolState.OVERLAPPED)
    with pytest.raises(ProtocolError):
        validate_transition(ProtocolState.HOME, ProtocolState.CLEAN)


def test_transition_table_covers_all_states():
    for state in ProtocolState:
        assert (state in ALLOWED_TRANSITIONS
                or any(state in targets
                       for targets in ALLOWED_TRANSITIONS.values()))
