"""Crash-injection tests: the heart of the reproduction.

The invariant (§3.1/§4.5): after a crash at *any* moment, recovery
restores exactly the physical-memory image that existed at the end of
the last committed epoch — ``C_last`` if its checkpoint's commit record
reached NVM, else ``C_penult``.

These tests drive the controller directly, track a golden snapshot per
epoch boundary, crash at chosen (and random) points, and compare the
recovered image block-for-block.
"""

import random

from repro.core.epoch import Phase
from repro.sim.request import Origin

from ..conftest import (end_epoch, make_direct, pad, run_until, settle,
                        write_block)

BLOCKS = 48   # working set (well within the test BTT)


def token(epoch, block):
    return pad(f"e{epoch}b{block}".encode())


def run_epochs(system, num_epochs, writes_per_epoch, seed=1,
               hot_page=None):
    """Execute epochs of random writes; returns golden snapshots."""
    rng = random.Random(seed)
    shadow = {}
    goldens = {-1: {}}
    for epoch in range(num_epochs):
        for _ in range(writes_per_epoch):
            block = rng.randrange(BLOCKS)
            data = token(epoch, block)
            write_block(system, block, data)
            shadow[block] = data
        if hot_page is not None:
            first = hot_page * system.config.blocks_per_page
            for offset in range(system.config.blocks_per_page):
                data = token(epoch, first + offset)
                write_block(system, first + offset, data)
                shadow[first + offset] = data
        run_until(system.engine,
                  lambda: system.ctl.epochs.phase is Phase.EXECUTING)
        assert not system.ctl._deferred_writes, \
            "test working set must not overflow the tables"
        system.ctl.force_epoch_end("test")
        run_until(system.engine,
                  lambda e=epoch: system.ctl.epochs.active_epoch > e)
        goldens[epoch] = dict(shadow)
    return goldens


def assert_recovers_to_golden(system, goldens, max_block=None):
    system.ctl.crash()
    recovered = system.ctl.recover()
    assert recovered.epoch in goldens, \
        f"recovered epoch {recovered.epoch} has no golden snapshot"
    golden = goldens[recovered.epoch]
    limit = max_block if max_block is not None else BLOCKS
    for block in range(limit):
        expected = golden.get(block, bytes(64))
        actual = recovered.visible_block(block)
        assert actual == expected, (
            f"block {block}: recovered {actual[:12]!r} != "
            f"expected {expected[:12]!r} (epoch {recovered.epoch})")
    return recovered


def test_crash_before_any_checkpoint(direct_system):
    s = direct_system
    write_block(s, 0, b"lost")
    settle(s.engine, 1000)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.epoch == -1
    assert recovered.visible_block(0) == bytes(64)


def test_crash_after_commit_recovers_that_epoch(direct_system):
    s = direct_system
    goldens = run_epochs(s, num_epochs=1, writes_per_epoch=20)
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 0)
    recovered = assert_recovers_to_golden(s, goldens)
    assert recovered.epoch == 0


def test_crash_mid_checkpoint_recovers_previous_epoch(direct_system):
    s = direct_system
    goldens = run_epochs(s, num_epochs=2, writes_per_epoch=20)
    # Epoch 1's checkpoint may be in flight; crash right now.
    recovered = assert_recovers_to_golden(s, goldens)
    assert recovered.epoch in (0, 1)


def test_crash_during_next_epoch_execution(direct_system):
    s = direct_system
    goldens = run_epochs(s, num_epochs=2, writes_per_epoch=20)
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 1)
    # Uncommitted epoch-2 writes must be rolled back.
    write_block(s, 0, b"uncommitted")
    settle(s.engine, 500)
    recovered = assert_recovers_to_golden(s, goldens)
    assert recovered.epoch == 1


def test_crash_with_page_scheme_active(direct_system):
    s = direct_system
    goldens = run_epochs(s, num_epochs=4, writes_per_epoch=10, hot_page=0)
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 3)
    assert 0 in s.ctl.ptt, "hot page should have been promoted"
    recovered = assert_recovers_to_golden(
        s, goldens, max_block=s.config.blocks_per_page * 2)
    assert recovered.epoch == 3


def test_crash_at_many_random_points():
    """Sweep crash times across a multi-epoch run (deterministic)."""
    for crash_step in range(0, 20, 3):
        s = make_direct()
        rng = random.Random(99)
        shadow = {}
        goldens = {-1: {}}
        epoch = 0
        steps = 0
        crashed = False
        while epoch < 4 and not crashed:
            for _ in range(12):
                block = rng.randrange(BLOCKS)
                data = token(epoch, block)
                write_block(s, block, data)
                shadow[block] = data
                steps += 1
                if steps == crash_step:
                    settle(s.engine, rng.randrange(1, 200_000))
                    crashed = True
                    break
            if crashed:
                break
            run_until(s.engine,
                      lambda: s.ctl.epochs.phase is Phase.EXECUTING)
            s.ctl.force_epoch_end("test")
            run_until(s.engine,
                      lambda e=epoch: s.ctl.epochs.active_epoch > e)
            goldens[epoch] = dict(shadow)
            epoch += 1
        assert_recovers_to_golden(s, goldens)


def test_recovery_restores_pages_into_dram(direct_system):
    s = direct_system
    run_epochs(s, num_epochs=3, writes_per_epoch=5, hot_page=1)
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 2)
    assert 1 in s.ctl.ptt
    s.ctl.crash()
    recovered = s.ctl.recover()
    # The recovered working region holds the page's checkpoint copy.
    meta = recovered.meta
    assert 1 in meta.page_regions
    first = s.config.blocks_per_page
    assert recovered.visible_block(first) == token(2, first)


def test_cpu_state_recovered_with_memory(direct_system):
    s = direct_system
    run_epochs(s, num_epochs=2, writes_per_epoch=8)
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 1)
    s.ctl.crash()
    recovered = s.ctl.recover()
    assert recovered.cpu_state is not None


def test_double_crash_recovery_is_stable(direct_system):
    s = direct_system
    goldens = run_epochs(s, num_epochs=2, writes_per_epoch=10)
    run_until(s.engine, lambda: s.ctl.committed_meta.epoch >= 1)
    s.ctl.crash()
    first = s.ctl.recover()
    second = s.ctl.recover()   # recovery is idempotent
    for block in range(BLOCKS):
        assert first.visible_block(block) == second.visible_block(block)
    assert first.epoch == second.epoch == 1
    assert goldens[1] is not None
