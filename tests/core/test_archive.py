"""Tests for the §6 bug-tolerance checkpoint archive."""

import pytest

from repro.core.archive import CheckpointArchive
from repro.errors import RecoveryError

from ..conftest import end_epoch, make_direct, pad, write_block


def test_archive_captures_every_commit():
    s = make_direct()
    archive = CheckpointArchive(s.ctl, every_n_epochs=1, num_blocks=16)
    for epoch in range(3):
        write_block(s, epoch, f"e{epoch}".encode())
        end_epoch(s)
    assert archive.archived_epochs == [0, 1, 2]


def test_recover_to_past_epoch():
    """The bug-tolerance scenario: epoch 2 contains the 'bug'; roll
    back beyond what the in-NVM protocol retains."""
    s = make_direct()
    archive = CheckpointArchive(s.ctl, num_blocks=16)
    write_block(s, 0, b"good-v1")
    end_epoch(s)                      # epoch 0
    write_block(s, 0, b"good-v2")
    end_epoch(s)                      # epoch 1
    write_block(s, 0, b"BUGGY!")
    end_epoch(s)                      # epoch 2
    # Normal recovery only reaches the newest commit...
    s.ctl.crash()
    assert s.ctl.recover().visible_block(0) == pad(b"BUGGY!")
    # ...the archive reaches any of them.
    assert archive.recover_to(0).visible_block(0) == pad(b"good-v1")
    assert archive.recover_to(1).visible_block(0) == pad(b"good-v2")
    assert archive.latest_before(1).epoch == 1


def test_archive_respects_period():
    s = make_direct()
    archive = CheckpointArchive(s.ctl, every_n_epochs=2, num_blocks=8)
    for epoch in range(5):
        write_block(s, 0, bytes([epoch + 1]))
        end_epoch(s)
    assert archive.archived_epochs == [0, 2, 4]


def test_archive_bounds_retention():
    s = make_direct()
    archive = CheckpointArchive(s.ctl, num_blocks=4, max_checkpoints=2)
    for epoch in range(4):
        write_block(s, 0, bytes([epoch + 1]))
        end_epoch(s)
    assert archive.archived_epochs == [2, 3]
    with pytest.raises(RecoveryError):
        archive.recover_to(0)


def test_archive_image_covers_pages_and_blocks():
    s = make_direct()
    per_page = s.config.blocks_per_page
    archive = CheckpointArchive(s.ctl, num_blocks=3 * per_page)
    # Hot page (page writeback) + sparse block (block remapping).
    first = 2 * per_page
    for offset in range(per_page):
        write_block(s, first + offset, bytes([offset + 1]))
    write_block(s, 1, b"sparse")
    end_epoch(s)
    end_epoch(s)   # page promoted at commit 0; image at commit 1
    checkpoint = archive.latest_before(10)
    assert checkpoint.visible_block(1) == pad(b"sparse")
    assert checkpoint.visible_block(first + 3) == pad(bytes([4]))


def test_invalid_period_rejected():
    s = make_direct()
    with pytest.raises(RecoveryError):
        CheckpointArchive(s.ctl, every_n_epochs=0)
