"""Unit tests for the epoch manager."""

import pytest

from repro.core.epoch import EpochManager, Phase
from repro.errors import SimulationError
from repro.sim.engine import Engine


def make(epoch_cycles=1000):
    engine = Engine()
    ended = []
    manager = EpochManager(engine, epoch_cycles, lambda r: ended.append(r))
    return engine, manager, ended


def test_timer_requests_end():
    engine, manager, ended = make(1000)
    manager.start()
    engine.run(until=999)
    assert not ended
    engine.run(until=1001)
    assert ended == ["timer"]
    assert manager.phase is Phase.ENDING


def test_pipeline_sequence():
    engine, manager, ended = make()
    manager.start()
    manager.request_end("manual")
    assert manager.phase is Phase.ENDING
    manager.execution_phase_done()
    assert manager.phase is Phase.CHECKPOINTING
    assert manager.active_epoch == 1
    assert manager.ckpt_epoch == 0
    manager.checkpoint_committed()
    assert manager.phase is Phase.EXECUTING
    assert manager.ckpt_epoch is None


def test_end_deferred_while_checkpointing():
    engine, manager, ended = make()
    manager.start()
    manager.request_end("a")
    manager.execution_phase_done()
    manager.request_end("b")            # previous ckpt still in flight
    assert ended == ["a"]
    manager.checkpoint_committed()
    assert ended == ["a", "b"]          # honoured at commit (extension)


def test_stale_timer_ignored():
    engine, manager, ended = make(1000)
    manager.start()
    manager.request_end("early")        # epoch 0 ends before its timer
    manager.execution_phase_done()      # also arms epoch 1's timer (t=1000)
    manager.checkpoint_committed()
    # At t=1000 BOTH timer events fire: epoch 0's (stale, ignored) and
    # epoch 1's (legitimate).  Exactly one end request must result.
    engine.run(until=1001)
    assert ended == ["early", "timer"]
    manager.execution_phase_done()
    manager.checkpoint_committed()
    engine.run(until=2002)              # epoch 2's own timer only
    assert ended == ["early", "timer", "timer"]


def test_stop_blocks_everything():
    engine, manager, ended = make(1000)
    manager.start()
    manager.stop()
    engine.run(until=5000)
    assert not ended
    manager.request_end("manual")
    assert not ended


def test_illegal_sequences_raise():
    _engine, manager, _ended = make()
    manager.start()
    with pytest.raises(SimulationError):
        manager.execution_phase_done()       # not ENDING
    with pytest.raises(SimulationError):
        manager.checkpoint_committed()       # nothing in flight
    with pytest.raises(SimulationError):
        manager.start()                      # double start
