"""§1/§2.3 design-choice ablations beyond Table 1.

DESIGN.md calls out three load-bearing design choices; this bench
quantifies each against the full design on a mixed workload:

* dual granularity (vs block-only / page-only — see also Table 1),
* overlapped checkpointing (stall share vs the stop-the-world systems),
* scheme-switch thresholds (22/16) versus never/always promoting.
"""

from repro.config import SystemConfig
from repro.core.controller import ThyNVMPolicy
from repro.harness.runner import execute
from repro.harness.systems import build_system
from repro.harness.tables import format_table
from repro.workloads.micro import sliding_trace


def _run(policy=None, config=None, num_ops=8000, **config_overrides):
    config = (config or SystemConfig()).with_overrides(**config_overrides)
    trace = sliding_trace(2 * 1024 * 1024, num_ops)
    system = build_system("thynvm", config, policy=policy)
    return execute(system, trace).stats


def report() -> dict:
    variants = {
        "full design": _run(),
        "no cooperation (§3.4 off)": _run(
            policy=ThyNVMPolicy(temp_cooperation=False)),
        "never promote (thresholds off)": _run(
            promote_threshold=63, demote_threshold=0),
        "always promote (threshold 1)": _run(
            promote_threshold=1, demote_threshold=0),
    }
    rows = []
    results = {}
    for name, stats in variants.items():
        results[name] = {
            "cycles": stats.cycles,
            "nvm_write_blocks": stats.nvm_write_blocks,
            "ckpt_pct": 100 * stats.checkpoint_stall_fraction,
            "promoted": stats.pages_promoted,
        }
        rows.append([name, stats.cycles, stats.nvm_write_blocks,
                     round(100 * stats.checkpoint_stall_fraction, 2),
                     stats.pages_promoted])
    print()
    print(format_table(
        ["variant", "cycles", "NVM writes", "ckpt %", "promoted pages"],
        rows, title="Design-choice ablations (Sliding, 2 MiB footprint)"))
    return results


def test_claims_ablation(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    full = results["full design"]
    # The full design must not be dramatically worse than any ablation
    # (adaptivity should pick the better scheme), and the threshold
    # mechanism must actually fire on a sliding working set.
    assert full["promoted"] > 0
    never = results["never promote (thresholds off)"]
    assert full["cycles"] <= never["cycles"] * 1.3
