"""Figure 9: key-value-store transaction throughput vs request size.

Paper's shape: ThyNVM consistently beats journaling and shadow paging
(avg +8.8%/+4.3% over journaling and +29.9%/+43.1% over shadow for the
hash table / red-black tree) and lands close to the ideal systems;
throughput falls as request size grows for every system.
"""

from repro.harness.experiments import fig9_throughput
from repro.harness.systems import PRETTY_NAMES
from repro.harness.tables import format_table, geometric_mean


def report(name, results) -> dict:
    series = fig9_throughput(results)
    sizes = sorted(series)
    systems = list(next(iter(series.values())).keys())
    rows = [[size] + [series[size][s] for s in systems] for size in sizes]
    print()
    print(format_table(
        ["request B"] + [PRETTY_NAMES[s] for s in systems], rows,
        title=f"Figure 9 ({name}): transaction throughput (KTPS)"))
    return series


def _assert_shape(series) -> None:
    sizes = sorted(series)
    mean = {
        system: geometric_mean(series[size][system] for size in sizes)
        for system in series[sizes[0]]
    }
    assert mean["thynvm"] > mean["shadow"], "ThyNVM should beat shadow paging"
    assert mean["thynvm"] > 0.9 * mean["journal"], \
        "ThyNVM should be at least competitive with journaling"
    # Throughput decreases with request size (paper's x-axis trend).
    for system in mean:
        assert series[sizes[0]][system] > series[sizes[-1]][system]


def test_fig9a_hashtable_throughput(benchmark, kv_hashtable_results):
    series = benchmark.pedantic(report, args=("hash table",
                                              kv_hashtable_results),
                                rounds=1, iterations=1)
    _assert_shape(series)


def test_fig9b_rbtree_throughput(benchmark, kv_rbtree_results):
    series = benchmark.pedantic(report, args=("red-black tree",
                                              kv_rbtree_results),
                                rounds=1, iterations=1)
    _assert_shape(series)
