"""§5.4 claim: ThyNVM is negligible for compute-bound applications.

"For the remaining SPEC CPU2006 applications, we verified that ThyNVM
has negligible effect compared to the Ideal DRAM."  This bench runs
compute-bound SPEC models (cache-resident footprints, long compute
stretches) on Ideal DRAM and ThyNVM and asserts the claim's direction:
normalized IPC within a few percent of 1.0.
"""

from repro.config import SystemConfig
from repro.harness.runner import run_workload
from repro.harness.tables import format_table, geometric_mean
from repro.units import ms_to_cycles
from repro.workloads.spec import SPEC_COMPUTE_MODELS, spec_trace


def report() -> dict:
    config = SystemConfig(epoch_cycles=ms_to_cycles(1))
    results = {}
    rows = []
    for name, model in SPEC_COMPUTE_MODELS.items():
        dram = run_workload("ideal_dram",
                            spec_trace(model, 12000), config).stats
        thynvm = run_workload("thynvm",
                              spec_trace(model, 12000), config).stats
        normalized = thynvm.ipc / dram.ipc
        results[name] = normalized
        rows.append([name, round(dram.ipc, 4), round(thynvm.ipc, 4),
                     round(normalized, 4)])
    rows.append(["geomean", "", "",
                 round(geometric_mean(results.values()), 4)])
    print()
    print(format_table(
        ["benchmark", "Ideal DRAM IPC", "ThyNVM IPC", "normalized"],
        rows,
        title="§5.4 claim: compute-bound SPEC — ThyNVM ~= Ideal DRAM"))
    return results


def test_claim_compute_bound(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    assert geometric_mean(results.values()) > 0.88
    for name, normalized in results.items():
        assert normalized > 0.82, f"{name}: {normalized}"