"""Extension bench: multi-core scaling under a shared LLC (Table 2).

The paper's machine shares the LLC across cores ("2MB/core"); its
evaluation reports single-program results.  This bench runs one
Streaming instance per core on 1/2/4 cores and measures how ThyNVM's
transparent checkpointing scales when multiple cores dirty memory
concurrently — total work throughput should grow with cores while the
checkpoint-stall share stays flat (the epoch boundary quiesces all
cores together, but the flush is still initiate-only).
"""

from repro.config import SystemConfig
from repro.harness.runner import execute
from repro.harness.systems import build_system
from repro.harness.tables import format_table
from repro.workloads.micro import streaming_trace

OPS_PER_CORE = 4000
FOOTPRINT = 1024 * 1024


def report() -> dict:
    results = {}
    rows = []
    for num_cores in (1, 2, 4):
        config = SystemConfig(num_cores=num_cores)
        system = build_system("thynvm", config)
        traces = [streaming_trace(FOOTPRINT, OPS_PER_CORE, seed=i)
                  for i in range(num_cores)]
        stats = execute(system, None, traces=traces).stats
        work_rate = stats.instructions / stats.cycles
        results[num_cores] = {
            "cycles": stats.cycles,
            "aggregate_ipc": work_rate,
            "ckpt_stall": stats.checkpoint_stall_fraction,
        }
        rows.append([num_cores, stats.cycles, round(work_rate, 4),
                     round(100 * stats.checkpoint_stall_fraction, 2)])
    print()
    print(format_table(
        ["cores", "cycles", "aggregate IPC", "ckpt stall %"], rows,
        title="Extension: ThyNVM multi-core scaling (Streaming per core)"))
    return results


def test_ext_multicore_scaling(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    # Aggregate instruction throughput must grow with core count...
    assert results[4]["aggregate_ipc"] > 1.5 * results[1]["aggregate_ipc"]
    # ...and transparent checkpointing must not become stop-the-world.
    assert results[4]["ckpt_stall"] < 0.2