"""Figure 12: sensitivity of ThyNVM to the number of BTT entries.

Paper's shape (hash-table KV store): a larger BTT reduces NVM write
traffic (fewer overflow-forced checkpoints) and generally increases
transaction throughput.
"""

from repro.harness.experiments import fig12_btt_sensitivity
from repro.harness.tables import format_table


def report() -> dict:
    series = fig12_btt_sensitivity()
    rows = [[size,
             series[size]["throughput_ktps"],
             series[size]["nvm_write_MB"],
             series[size]["epochs_forced_by_overflow"]]
            for size in sorted(series)]
    print()
    print(format_table(
        ["BTT entries", "throughput KTPS", "NVM write MB",
         "overflow epochs"],
        rows, title="Figure 12: BTT size sensitivity (hash-table store)"))
    return series


def test_fig12_btt_sensitivity(benchmark):
    series = benchmark.pedantic(report, rounds=1, iterations=1)
    sizes = sorted(series)
    smallest, largest = sizes[0], sizes[-1]
    # Larger BTT => no more (usually fewer) overflow-forced epochs and
    # no more NVM write traffic.
    assert (series[largest]["epochs_forced_by_overflow"]
            <= series[smallest]["epochs_forced_by_overflow"])
    assert (series[largest]["nvm_write_MB"]
            <= series[smallest]["nvm_write_MB"] * 1.05)
    # Throughput should not degrade with a larger table.
    assert (series[largest]["throughput_ktps"]
            >= series[smallest]["throughput_ktps"] * 0.95)
