"""Table 1 / §1 claims: the granularity-vs-metadata tradeoff, measured.

The paper motivates the dual scheme with two numbers: versus *uniform
page-granularity* checkpointing it cuts stall time by up to 86.2%, and
it needs only ~26% of the metadata of *uniform cache-block-granularity*
checkpointing.  This bench runs those two corner designs (built from
the ThyNVM controller with one scheme disabled) against the full dual
scheme on a random-write workload and reports both axes.
"""

from repro.harness.systems import PRETTY_NAMES
from repro.harness.tables import format_table


def report(results) -> dict:
    rows = []
    for system, cells in results.items():
        rows.append([
            PRETTY_NAMES[system],
            cells["cycles"],
            cells["overhead_cycles"],
            cells["ckpt_stall_cycles"],
            cells["metadata_peak_bytes"],
            cells["nvm_write_blocks"],
        ])
    print()
    print(format_table(
        ["system", "cycles", "overhead cyc", "stall cyc",
         "peak metadata B", "NVM writes"],
        rows,
        title="Table 1: uniform-granularity ablations vs the dual scheme"))
    return results


def test_table1_tradeoff(benchmark, tradeoff_results):
    results = benchmark.pedantic(report, args=(tradeoff_results,),
                                 rounds=1, iterations=1)
    dual = results["thynvm"]
    block_only = results["thynvm_block_only"]
    page_only = results["thynvm_page_only"]
    # Page-granularity's checkpointing overhead dwarfs the dual scheme's
    # (the paper's "up to 86.2% stall-time reduction" claim direction).
    assert dual["overhead_cycles"] < 0.5 * page_only["overhead_cycles"]
    # Metadata: the paper's "26% of the hardware overhead" compares
    # *provisioned* table sizes (a page entry covers 64 blocks).  On a
    # capacity-capped workload the measured peaks are necessarily
    # similar; assert the dual scheme stays in block-only's ballpark
    # while page-only demonstrates the per-page compression.
    assert dual["metadata_peak_bytes"] <= block_only["metadata_peak_bytes"] * 1.15
    assert page_only["metadata_peak_bytes"] < \
        0.3 * block_only["metadata_peak_bytes"]
