"""Figure 11: SPEC CPU2006 IPC normalized to Ideal DRAM.

Paper's shape: ThyNVM slows the memory-intensive SPEC benchmarks by
only ~3.4% on average versus Ideal DRAM and is ~2.7% *faster* than
Ideal NVM on average (DRAM caching of hot pages pays off).
"""

from repro.harness.experiments import fig11_normalized_ipc
from repro.harness.systems import PRETTY_NAMES
from repro.harness.tables import format_table, geometric_mean


def report(results) -> dict:
    series = fig11_normalized_ipc(results)
    systems = list(next(iter(series.values())).keys())
    rows = [[bench] + [series[bench][s] for s in systems]
            for bench in series]
    rows.append(["geomean"] + [
        geometric_mean(series[b][s] for b in series) for s in systems])
    print()
    print(format_table(
        ["benchmark"] + [PRETTY_NAMES[s] for s in systems], rows,
        title="Figure 11: IPC normalized to Ideal DRAM (higher is better)"))
    return series


def test_fig11_spec_ipc(benchmark, spec_results):
    series = benchmark.pedantic(report, args=(spec_results,),
                                rounds=1, iterations=1)
    benches = list(series)
    geo_thynvm = geometric_mean(series[b]["thynvm"] for b in benches)
    geo_nvm = geometric_mean(series[b]["ideal_nvm"] for b in benches)
    # ThyNVM within striking distance of Ideal DRAM.  (The absolute gap
    # is larger than the paper's 3.4% because the blocking-load
    # request-level CPU model amplifies the memory-time share; see
    # EXPERIMENTS.md.  The ordering and the closeness to Ideal NVM are
    # the preserved shape.)
    assert geo_thynvm > 0.65, f"ThyNVM too far from Ideal DRAM: {geo_thynvm}"
    # ...and competitive with Ideal NVM thanks to DRAM caching.
    assert geo_thynvm > 0.88 * geo_nvm
