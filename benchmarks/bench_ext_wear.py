"""Extension bench: NVM write endurance (wear) distribution.

NVM cells wear out (the paper's PCM references [38, 64] discuss write
endurance at length), so *where* a consistency mechanism puts its
writes matters.  This bench runs the same workload on ThyNVM and
journaling and reports per-block wear in each NVM region:

* journaling rewrites every dirty block **in place** at home plus once
  in the log — the hottest data block takes double writes at a fixed
  address;
* ThyNVM's checkpoint copies ping-pong between regions A and B, halving
  per-cell wear on data — but its metadata backup region is rewritten
  every epoch and emerges as the true wear hotspot, a real design
  consideration the paper leaves to future work.
"""

from repro.config import small_test_config
from repro.harness.runner import execute
from repro.harness.systems import build_system
from repro.harness.tables import format_table
from repro.mem.controller import DeviceKind
from repro.workloads.micro import sliding_trace

OPS = 6000
FOOTPRINT = 128 * 1024


def report() -> dict:
    config = small_test_config(epoch_cycles=60_000)
    results = {}
    rows = []
    for name in ("thynvm", "journal"):
        system = build_system(name, config)
        execute(system, sliding_trace(FOOTPRINT, OPS, seed=5))
        device = system.memctrl.device(DeviceKind.NVM)
        layout = system.memsys.layout
        data_range = (0, layout.backup_base)
        backup_range = (layout.backup_base,
                        layout.backup_base + layout.backup_bytes)
        blocks, total, peak = device.wear_summary(data_range)
        b_blocks, b_total, b_peak = device.wear_summary(backup_range)
        results[name] = {
            "data_peak": peak, "data_mean": total / max(1, blocks),
            "backup_peak": b_peak,
        }
        rows.append([name, blocks, total, peak,
                     round(total / max(1, blocks), 2), b_peak])
    print()
    print(format_table(
        ["system", "data blocks", "data writes", "data peak/block",
         "data mean/block", "backup peak/block"],
        rows, title="Extension: NVM wear distribution (Sliding)"))
    return results


def test_ext_wear_distribution(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    # Ping-ponged checkpoints spread data wear at least as well as
    # journaling's fixed-address in-place rewrites.
    assert (results["thynvm"]["data_peak"]
            <= results["journal"]["data_peak"] * 1.2)
    # And the honest caveat: ThyNVM's metadata backup area is its own
    # hotspot (future-work material in the paper).
    assert results["thynvm"]["backup_peak"] > 0