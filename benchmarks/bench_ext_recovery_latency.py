"""Extension bench (§2.2): recovery latency, ThyNVM vs log replay.

The paper motivates checkpointing over logging partly with recovery
speed: "log replay increases the recovery time on system failure,
reducing the fast recovery benefit of using NVM".  This bench crashes
ThyNVM and the journaling baseline at equivalent points and compares
the §4.5 recovery cost (reload tables + restore DRAM pages) with the
journal's committed-log replay cost.
"""

from repro.config import small_test_config
from repro.harness.systems import build_system
from repro.harness.tables import format_table
from repro.units import cycles_to_ns
from repro.workloads.micro import sliding_trace

OPS = 4000
FOOTPRINT = 128 * 1024


def report() -> dict:
    config = small_test_config(epoch_cycles=60_000)
    results = {}

    thynvm = build_system("thynvm", config)
    thynvm.memsys.start()
    thynvm.core.run_trace(iter(sliding_trace(FOOTPRINT, OPS, seed=2)),
                          lambda: None)
    thynvm.engine.run(until=600_000)
    thynvm.memsys.crash()
    recovered = thynvm.memsys.recover()
    results["thynvm"] = {
        "recovery_cycles": recovered.recovery_cycles,
        "recovered_epoch": recovered.epoch,
    }

    journal = build_system("journal", config)
    journal.memsys.start()
    journal.core.run_trace(iter(sliding_trace(FOOTPRINT, OPS, seed=2)),
                           lambda: None)
    # Crash exactly when a log becomes durable (worst case for replay).
    ctl = journal.memsys
    original = ctl._on_ckpt_stage

    def crash_after_log(stage_index):
        original(stage_index)
        if stage_index == 1 and ctl._committed_log:
            ctl.crash()

    ctl._on_ckpt_stage = crash_after_log
    journal.engine.run(until=2_000_000)
    if not ctl._crashed:
        ctl.crash()
    results["journal"] = {
        "recovery_cycles": ctl.recovery_cycles_estimate(),
        "log_blocks": len(ctl._committed_log or {}),
    }

    rows = [
        ["ThyNVM (reload tables + pages)",
         results["thynvm"]["recovery_cycles"],
         round(cycles_to_ns(results["thynvm"]["recovery_cycles"]) / 1000, 1)],
        [f"Journal (replay {results['journal']['log_blocks']} log blocks)",
         results["journal"]["recovery_cycles"],
         round(cycles_to_ns(results["journal"]["recovery_cycles"]) / 1000, 1)],
    ]
    print()
    print(format_table(["system", "recovery cycles", "µs"], rows,
                       title="§2.2 extension: post-crash recovery latency"))
    return results


def test_ext_recovery_latency(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    assert results["thynvm"]["recovered_epoch"] >= 0
    if results["journal"]["log_blocks"] > 0:
        # Replaying a committed log costs more than reloading metadata.
        assert (results["journal"]["recovery_cycles"]
                > results["thynvm"]["recovery_cycles"] * 0.5)