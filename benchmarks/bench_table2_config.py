"""Table 2: the evaluated system configuration, printed for the record.

Not a measurement — this bench verifies that the simulator's default
parameters reproduce the paper's Table 2 and prints them alongside the
derived address-space layout.
"""

from repro.config import SystemConfig
from repro.core.regions import HardwareLayout
from repro.harness.tables import format_table
from repro.units import ns_to_cycles


def report() -> SystemConfig:
    config = SystemConfig()
    rows = list(config.describe().items())
    print()
    print(format_table(["parameter", "value"], rows,
                       title="Table 2: system configuration"))
    layout = HardwareLayout(config)
    print(f"\nHardware address space: NVM {layout.nvm_bytes >> 20} MiB "
          f"(home/ckpt-B + ckpt-A + {layout.backup_bytes >> 10} KiB backup), "
          f"DRAM {layout.dram_bytes >> 20} MiB "
          f"(working region + temp slots)")
    return config


def test_table2_config(benchmark):
    config = benchmark.pedantic(report, rounds=1, iterations=1)
    # Table 2 verbatim checks.
    assert config.dram.row_hit == ns_to_cycles(40)
    assert config.dram.row_miss_clean == ns_to_cycles(80)
    assert config.nvm.row_hit == ns_to_cycles(40)
    assert config.nvm.row_miss_clean == ns_to_cycles(128)
    assert config.nvm.row_miss_dirty == ns_to_cycles(368)
    assert config.table_lookup_latency == ns_to_cycles(3)
    assert config.l1.hit_latency == 4
    assert config.l2.hit_latency == 12
    assert config.l3.hit_latency == 28
    assert config.btt_entries == 2048
    assert config.ptt_entries == 4096
    assert config.promote_threshold == 22
    assert config.demote_threshold == 16
    # ~37 KB of translation metadata (paper, §4.2).
    assert 30_000 < config.metadata_bytes < 45_000
