"""Extension bench: epoch-length sensitivity (the paper's 10 ms choice).

The paper fixes the epoch at 10 ms "comparable to [61, 73]" without a
sweep.  This bench sweeps the (scaled) epoch length on the Sliding
micro-benchmark and reports the tradeoff the choice balances: shorter
epochs bound data loss but checkpoint more often (more NVM traffic,
more boundary flushes); longer epochs amortize overheads but raise the
durability window and table pressure.
"""

from repro.config import SystemConfig
from repro.harness.runner import run_workload
from repro.harness.tables import format_table
from repro.units import us_to_cycles
from repro.workloads.micro import sliding_trace

EPOCHS_US = (25, 50, 100, 200, 400, 800)


def report() -> dict:
    results = {}
    rows = []
    for epoch_us in EPOCHS_US:
        config = SystemConfig(epoch_cycles=us_to_cycles(epoch_us))
        trace = sliding_trace(2 * 1024 * 1024, 8000, seed=3)
        stats = run_workload("thynvm", trace, config).stats
        results[epoch_us] = {
            "cycles": stats.cycles,
            "epochs": stats.epochs_completed,
            "nvm_writes": stats.nvm_write_blocks,
            "ckpt_writes": stats.nvm_writes.get("checkpoint"),
        }
        rows.append([f"{epoch_us} µs", stats.cycles,
                     stats.epochs_completed, stats.nvm_write_blocks,
                     stats.nvm_writes.get("checkpoint")])
    print()
    print(format_table(
        ["epoch", "cycles", "epochs", "NVM writes", "ckpt writes"],
        rows, title="Extension: epoch-length sensitivity (Sliding)"))
    return results


def test_ext_epoch_length(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    shortest, longest = EPOCHS_US[0], EPOCHS_US[-1]
    # Shorter epochs => more checkpoints => more checkpoint traffic.
    assert results[shortest]["epochs"] > results[longest]["epochs"]
    assert (results[shortest]["ckpt_writes"]
            >= results[longest]["ckpt_writes"])
    # Longer epochs should not be slower overall.
    assert results[longest]["cycles"] <= results[shortest]["cycles"] * 1.1