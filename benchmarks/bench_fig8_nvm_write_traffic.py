"""Figure 8: NVM write traffic breakdown and checkpointing-time share.

Paper's shape: ThyNVM avoids the pathological traffic spikes of the
baselines (shadow under Random); its traffic splits across CPU,
checkpointing and migration (migration dominating under Streaming);
and its time spent on checkpointing collapses to a few percent versus
journaling's 18.9% and shadow paging's 15.2% averages.
"""

from repro.harness.experiments import fig8_write_traffic
from repro.harness.systems import PRETTY_NAMES
from repro.harness.tables import format_table


def report(results) -> dict:
    series = fig8_write_traffic(results)
    rows = []
    for workload, by_system in series.items():
        for system, cells in by_system.items():
            rows.append([
                workload, PRETTY_NAMES[system],
                cells["cpu_MB"], cells["checkpoint_MB"],
                cells["migration_MB"], cells["other_MB"], cells["total_MB"],
                cells["ckpt_time_pct"],
            ])
    print()
    print(format_table(
        ["workload", "system", "cpu MB", "ckpt MB", "migr MB", "other MB",
         "total MB", "ckpt time %"],
        rows,
        title="Figure 8: NVM write traffic and checkpointing delay"))
    return series


def test_fig8_nvm_write_traffic(benchmark, micro_results):
    series = benchmark.pedantic(report, args=(micro_results,),
                                rounds=1, iterations=1)
    # The breakdown must account for every NVM write block: with the
    # `other` bucket the stacked bars always sum to the total.
    for workload, by_system in micro_results.items():
        for system, stats in by_system.items():
            breakdown = stats.nvm_write_breakdown()
            assert sum(breakdown.values()) == stats.nvm_write_blocks, \
                f"{workload}/{system}: breakdown drops traffic"
    for workload, by_system in series.items():
        # ThyNVM overlaps checkpointing with execution: its stall share
        # must be far below the stop-the-world baselines'.
        assert (by_system["thynvm"]["ckpt_time_pct"]
                < by_system["journal"]["ckpt_time_pct"] / 2)
        assert (by_system["thynvm"]["ckpt_time_pct"]
                < by_system["shadow"]["ckpt_time_pct"] / 2)
    # Shadow paging's write amplification explodes under Random; ThyNVM
    # stays within a sane factor of the direct CPU traffic.
    random = series["Random"]
    assert random["shadow"]["total_MB"] > 3 * random["thynvm"]["total_MB"]
    # Streaming moves pages in and out of DRAM: migration traffic is a
    # significant share for ThyNVM (paper's Fig. 8(b) observation).
    streaming = series["Streaming"]["thynvm"]
    assert streaming["migration_MB"] > 0.2 * streaming["total_MB"]
