"""Figure 10: write bandwidth consumption of the key-value stores.

Paper's shape: shadow paging burns far more NVM write bandwidth than
ThyNVM (full-page copies for sparse dirty data: −43.4%/−64.2% for
ThyNVM vs shadow); journaling uses somewhat less than ThyNVM (ThyNVM
keeps extra versions to overlap checkpointing: journaling has
19.0%/14.0% less); bandwidth grows with request size for everyone.
"""

from repro.harness.experiments import fig10_bandwidth
from repro.harness.systems import PRETTY_NAMES
from repro.harness.tables import format_table, geometric_mean


def report(name, results) -> dict:
    series = fig10_bandwidth(results)
    sizes = sorted(series)
    systems = list(next(iter(series.values())).keys())
    rows = [[size] + [series[size][s] for s in systems] for size in sizes]
    print()
    print(format_table(
        ["request B"] + [PRETTY_NAMES[s] for s in systems], rows,
        title=f"Figure 10 ({name}): write bandwidth (MB/s)"))
    return series


def _assert_shape(series) -> None:
    sizes = sorted(series)
    # The paper's claim ("ThyNVM uses less NVM write bandwidth than
    # shadow paging in most cases") is driven by the sparse-request
    # regime, where shadow's full-page copies amplify small dirty
    # payloads; at page-sized requests the curves converge/cross.
    sparse = [size for size in sizes if size <= 256]
    sparse_mean = {
        system: geometric_mean(series[size][system] for size in sparse)
        for system in series[sizes[0]]
    }
    assert sparse_mean["thynvm"] < sparse_mean["shadow"]
    assert series[sizes[0]]["thynvm"] < series[sizes[0]]["shadow"]
    # Bandwidth grows with request size for the non-pathological
    # systems; shadow's small-request amplification can flatten or even
    # invert its curve.
    for system in sparse_mean:
        if system == "shadow":
            continue
        assert series[sizes[-1]][system] > series[sizes[0]][system]


def test_fig10a_hashtable_bandwidth(benchmark, kv_hashtable_results):
    series = benchmark.pedantic(report, args=("hash table",
                                              kv_hashtable_results),
                                rounds=1, iterations=1)
    _assert_shape(series)


def test_fig10b_rbtree_bandwidth(benchmark, kv_rbtree_results):
    series = benchmark.pedantic(report, args=("red-black tree",
                                              kv_rbtree_results),
                                rounds=1, iterations=1)
    _assert_shape(series)
