"""Extension bench (§6): the configurable-persistence tradeoff.

The paper: "Such a system is only allowed to lose data updates that
happened in the last n ms... ThyNVM can be configured to checkpoint
data every n ms", and persistence "can also be explicitly triggered by
the program via a new instruction".  This bench sweeps both knobs on
the hash-table store: the epoch length (periodic durability window)
and per-transaction explicit persist barriers — quantifying what
stronger durability guarantees cost in throughput.
"""

from repro.config import SystemConfig
from repro.harness.runner import run_workload
from repro.harness.tables import format_table
from repro.units import us_to_cycles
from repro.workloads.kvstore.workload import KVWorkload, kv_trace

EPOCH_US = (25, 100, 400)
PERSIST_EVERY = (None, 16, 1)


def report() -> dict:
    results = {}
    rows = []
    for epoch_us in EPOCH_US:
        config = SystemConfig(epoch_cycles=us_to_cycles(epoch_us))
        for persist_every in PERSIST_EVERY:
            workload = KVWorkload(structure="hashtable", request_size=64,
                                  num_ops=600, preload=300,
                                  persist_every=persist_every)
            stats = run_workload("thynvm", kv_trace(workload), config).stats
            label = ("periodic only" if persist_every is None
                     else f"persist/{persist_every} txn")
            key = (epoch_us, persist_every)
            results[key] = {
                "ktps": stats.throughput_tps / 1000,
                "epochs": stats.epochs_completed,
                "nvm_writes": stats.nvm_write_blocks,
            }
            rows.append([f"{epoch_us} µs", label,
                         results[key]["ktps"],
                         stats.epochs_completed,
                         stats.nvm_write_blocks])
    print()
    print(format_table(
        ["epoch", "durability", "KTPS", "epochs", "NVM writes"],
        rows,
        title="§6 extension: durability window vs throughput (hash table)"))
    return results


def test_ext_persistence_interval(benchmark):
    results = benchmark.pedantic(report, rounds=1, iterations=1)
    for epoch_us in EPOCH_US:
        relaxed = results[(epoch_us, None)]
        strict = results[(epoch_us, 1)]
        # Per-transaction durability costs throughput and checkpoints.
        assert strict["ktps"] < relaxed["ktps"]
        assert strict["epochs"] > relaxed["epochs"]
    # Longer periodic windows never hurt relaxed-mode throughput much.
    assert (results[(400, None)]["ktps"]
            >= 0.8 * results[(25, None)]["ktps"])