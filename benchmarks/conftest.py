"""Shared fixtures for the figure-reproduction benchmarks.

Figures that plot different views of the same runs (e.g. Figs. 7/8 both
use the micro-benchmark runs; Figs. 9/10 both use the key-value-store
sweeps) share session-scoped result fixtures so each simulation runs
once per ``pytest benchmarks/`` invocation.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1.0) to grow or shrink
every trace proportionally, e.g. ``REPRO_BENCH_SCALE=3 pytest
benchmarks/ --benchmark-only`` for a longer, less noisy run.

Parallel/cached execution (docs/HARNESS.md): every fixture drives its
runs through ``repro.harness.parallel``, so

* ``REPRO_BENCH_JOBS=N`` fans the sweeps over N worker processes
  (default 1 — the serial path; results are identical either way), and
* ``REPRO_BENCH_CACHE=<dir>`` reuses finished points from an on-disk
  cache (keyed by workload, config and code version; unset = off).
"""

from __future__ import annotations

import os

import pytest

from repro.harness import experiments

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None


def scaled(n: int) -> int:
    return max(200, int(n * SCALE))


def _harness_kwargs() -> dict:
    return {"jobs": JOBS, "cache_dir": CACHE_DIR}


@pytest.fixture(scope="session")
def micro_results():
    """Micro-benchmark runs shared by the Fig. 7 and Fig. 8 benches."""
    return experiments.run_micro(num_ops=scaled(12000), **_harness_kwargs())


@pytest.fixture(scope="session")
def kv_hashtable_results():
    return experiments.run_kvstore("hashtable", num_ops=scaled(1200),
                                   **_harness_kwargs())


@pytest.fixture(scope="session")
def kv_rbtree_results():
    return experiments.run_kvstore("rbtree", num_ops=scaled(1200),
                                   **_harness_kwargs())


@pytest.fixture(scope="session")
def spec_results():
    return experiments.run_spec(num_mem_ops=scaled(10000),
                                **_harness_kwargs())


@pytest.fixture(scope="session")
def tradeoff_results():
    """Uniform-granularity ablation runs (Table 1 and the §1 claims)."""
    return experiments.table1_tradeoff(num_ops=scaled(8000),
                                       **_harness_kwargs())
