"""Shared fixtures for the figure-reproduction benchmarks.

Figures that plot different views of the same runs (e.g. Figs. 7/8 both
use the micro-benchmark runs; Figs. 9/10 both use the key-value-store
sweeps) share session-scoped result fixtures so each simulation runs
once per ``pytest benchmarks/`` invocation.

Scale knob: set ``REPRO_BENCH_SCALE`` (default 1.0) to grow or shrink
every trace proportionally, e.g. ``REPRO_BENCH_SCALE=3 pytest
benchmarks/ --benchmark-only`` for a longer, less noisy run.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import experiments

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(200, int(n * SCALE))


@pytest.fixture(scope="session")
def micro_results():
    """Micro-benchmark runs shared by the Fig. 7 and Fig. 8 benches."""
    return experiments.run_micro(num_ops=scaled(12000))


@pytest.fixture(scope="session")
def kv_hashtable_results():
    return experiments.run_kvstore("hashtable", num_ops=scaled(1200))


@pytest.fixture(scope="session")
def kv_rbtree_results():
    return experiments.run_kvstore("rbtree", num_ops=scaled(1200))


@pytest.fixture(scope="session")
def spec_results():
    return experiments.run_spec(num_mem_ops=scaled(10000))


@pytest.fixture(scope="session")
def tradeoff_results():
    """Uniform-granularity ablation runs (Table 1 and the §1 claims)."""
    return experiments.table1_tradeoff(num_ops=scaled(8000))
