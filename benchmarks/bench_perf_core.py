"""Simulator-core throughput: host events/sec over the perf matrix.

Unlike the figure benches, this measures the *simulator*, not the
simulated machine: how many engine events per host second the core
loop sustains (docs/PERFORMANCE.md).  `repro perf` records the same
matrix into BENCH_PERF.json; this bench exposes it to the pytest
-benchmark workflow (``pytest benchmarks/bench_perf_core.py
--benchmark-only``) alongside the figure reproductions.
"""

import os

from repro.harness.tables import format_table
from repro.perf import QUICK_OPS, run_perf

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def report() -> dict:
    ops = max(200, int(QUICK_OPS * SCALE))
    entry = run_perf(ops=ops, label="bench_perf_core")
    rows = [[cell["workload"], cell["system"], cell["events"],
             f"{cell['wall_seconds']:.3f}", f"{cell['events_per_sec']:,d}"]
            for cell in entry["cells"]]
    totals = entry["totals"]
    rows.append(["total", "", totals["events"],
                 f"{totals['wall_seconds']:.3f}",
                 f"{totals['events_per_sec']:,d}"])
    print()
    print(format_table(
        ["workload", "system", "events", "wall s", "events/s"], rows,
        title="Simulator-core throughput (host-side, higher is better)"))
    return entry


def test_perf_core_throughput(benchmark):
    entry = benchmark.pedantic(report, rounds=1, iterations=1)
    totals = entry["totals"]
    assert len(entry["cells"]) == 15
    assert totals["events"] > 0
    assert totals["events_per_sec"] > 0
    # The simulated outcomes are deterministic even though wall time is
    # not: every cell must report a positive, reproducible event count.
    assert all(cell["events"] > 0 and cell["cycles"] > 0
               for cell in entry["cells"])
