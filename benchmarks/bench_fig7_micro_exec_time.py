"""Figure 7: execution time of micro-benchmarks, normalized to Ideal DRAM.

Paper's headline shape: ThyNVM outperforms journaling (by ~10.2% avg)
and shadow paging (~14.8% avg) on *every* access pattern; shadow paging
is pathological under Random; ThyNVM lands between Ideal DRAM and the
software baselines.
"""

from repro.harness.experiments import fig7_exec_time
from repro.harness.systems import PRETTY_NAMES
from repro.harness.tables import format_table, geometric_mean


def report(results) -> dict:
    series = fig7_exec_time(results)
    systems = list(next(iter(series.values())).keys())
    rows = []
    for workload, values in series.items():
        rows.append([workload] + [values[s] for s in systems])
    rows.append(["geomean"] + [
        geometric_mean(series[w][s] for w in series) for s in systems])
    print()
    print(format_table(
        ["workload"] + [PRETTY_NAMES[s] for s in systems], rows,
        title="Figure 7: relative execution time (lower is better)"))
    return series


def test_fig7_micro_exec_time(benchmark, micro_results):
    series = benchmark.pedantic(report, args=(micro_results,),
                                rounds=1, iterations=1)
    # Shape assertions from the paper's Fig. 7 discussion.
    for workload in series:
        assert series[workload]["thynvm"] < series[workload]["journal"], \
            f"ThyNVM should beat journaling on {workload}"
        assert series[workload]["thynvm"] < series[workload]["shadow"], \
            f"ThyNVM should beat shadow paging on {workload}"
    # Shadow paging's pathological case is the random pattern.
    assert series["Random"]["shadow"] == max(
        series[w]["shadow"] for w in series)
